package chaos

import (
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// SupervisorConfig tunes the restart policy — the same shape Android's
// init applies to persistent services (restart after a delay, back off
// on crash loops, forget the backoff once the service stays up).
type SupervisorConfig struct {
	// InitialBackoff is the delay before the first restart attempt
	// (0 → 200ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 → 10s).
	MaxBackoff time.Duration
	// StableAfter is how long a service must stay up for its backoff to
	// reset to InitialBackoff (0 → 30s). A crash within StableAfter of
	// the previous restart doubles the delay instead.
	StableAfter time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.InitialBackoff == 0 {
		c.InitialBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 10 * time.Second
	}
	if c.StableAfter == 0 {
		c.StableAfter = 30 * time.Second
	}
	return c
}

// SupervisorStats is the recovery ledger.
type SupervisorStats struct {
	// Restarts / Failures count completed restart attempts.
	Restarts int
	Failures int
	// Pending is how many targets are currently down awaiting restart.
	Pending int
	// LastBackoff is the most recently scheduled restart delay.
	LastBackoff time.Duration
	// TotalDowntime accumulates death→successful-restart gaps across all
	// targets.
	TotalDowntime time.Duration
}

const (
	targetHost = "host"
	targetApp  = "app"
)

// target is one supervised process: a dedicated service host, or an
// app-service owner (which may export several registry services).
type target struct {
	kind     string
	name     string   // host name, or owner package
	services []string // app-service registry names (targetApp only)
	backoff  time.Duration
	lastUp   time.Duration // virtual time of the last (re)start
	downAt   time.Duration
	pending  bool
}

// Supervisor watches kernel kill events for the device's service hosts
// and app-service owners and restarts them through the device's
// recovery APIs after an exponential per-target backoff. Restart timers
// run on the workload scheduler's virtual-time queue, so supervised
// recovery is as deterministic as the chaos that caused it.
//
// Deaths it deliberately ignores: soft-reboot casualties (the device's
// reboot recovery re-registers everything itself), LMK evictions
// (re-spawning a memory-pressure victim would just thrash the LMK), and
// defender force-stops (the supervisor must not fight the defense).
type Supervisor struct {
	dev     *device.Device
	sched   *workload.Scheduler
	cfg     SupervisorConfig
	abort   func() bool
	targets map[string]*target
	stats   SupervisorStats
}

// NewSupervisor builds the supervisor, snapshots the supervised target
// set (current hosts + app-service owners), and hooks the kernel's kill
// notifications.
func NewSupervisor(dev *device.Device, sched *workload.Scheduler, cfg SupervisorConfig) *Supervisor {
	s := &Supervisor{
		dev:     dev,
		sched:   sched,
		cfg:     cfg.withDefaults(),
		targets: make(map[string]*target),
	}
	for _, name := range dev.HostNames() {
		s.targets[name] = &target{kind: targetHost, name: name}
	}
	for _, svcName := range dev.AppServices().Names() {
		svc := dev.AppService(svcName)
		if svc == nil {
			continue
		}
		pkg := svc.Owner().Package()
		t := s.targets[pkg]
		if t == nil {
			t = &target{kind: targetApp, name: pkg}
			s.targets[pkg] = t
		}
		t.services = append(t.services, svcName)
	}
	dev.Kernel().OnKill(s.onKill)
	reg := dev.Metrics()
	reg.GaugeFunc("jgre_supervisor_restarts_total",
		"Supervised services restarted.",
		func() float64 { return float64(s.stats.Restarts) })
	reg.GaugeFunc("jgre_supervisor_failures_total",
		"Supervised restart attempts that failed.",
		func() float64 { return float64(s.stats.Failures) })
	reg.GaugeFunc("jgre_supervisor_pending",
		"Supervised targets currently down awaiting restart.",
		func() float64 { return float64(s.stats.Pending) })
	reg.GaugeFunc("jgre_supervisor_backoff_seconds",
		"Most recently scheduled restart backoff.",
		func() float64 { return s.stats.LastBackoff.Seconds() })
	return s
}

// SetAbort installs a cancellation probe; a true return abandons
// pending restarts instead of touching the device.
func (s *Supervisor) SetAbort(fn func() bool) { s.abort = fn }

func (s *Supervisor) aborted() bool { return s.abort != nil && s.abort() }

// Stats returns the recovery ledger.
func (s *Supervisor) Stats() SupervisorStats { return s.stats }

// onKill reacts to a supervised target's death by scheduling a restart.
func (s *Supervisor) onKill(p *kernel.Process, reason string) {
	if strings.HasPrefix(reason, "soft reboot") ||
		strings.HasPrefix(reason, "lmk") ||
		strings.HasPrefix(reason, "jgre-defender") {
		return
	}
	t := s.targets[p.Name()]
	if t == nil || t.pending {
		return
	}
	now := s.dev.Clock().Now()
	if t.lastUp > 0 && now-t.lastUp < s.cfg.StableAfter {
		t.backoff *= 2
		if t.backoff > s.cfg.MaxBackoff {
			t.backoff = s.cfg.MaxBackoff
		}
	} else {
		t.backoff = s.cfg.InitialBackoff
	}
	t.pending = true
	t.downAt = now
	s.stats.Pending++
	s.stats.LastBackoff = t.backoff
	s.sched.At(now+t.backoff, func() { s.restart(t) })
}

// restart performs one scheduled restart attempt.
func (s *Supervisor) restart(t *target) {
	t.pending = false
	s.stats.Pending--
	if s.aborted() {
		return
	}
	if s.alive(t) {
		// A soft reboot (or another recovery path) revived the target while
		// we were backing off; nothing to do.
		t.lastUp = s.dev.Clock().Now()
		return
	}
	var err error
	if t.kind == targetHost {
		err = s.dev.RestartHost(t.name)
	} else {
		for _, svcName := range t.services {
			if rerr := s.dev.RestartAppService(svcName); rerr != nil && err == nil {
				err = rerr
			}
		}
	}
	now := s.dev.Clock().Now()
	if err != nil {
		s.stats.Failures++
		// Retry with a doubled (capped) backoff rather than abandoning the
		// target.
		t.backoff *= 2
		if t.backoff > s.cfg.MaxBackoff {
			t.backoff = s.cfg.MaxBackoff
		}
		t.pending = true
		s.stats.Pending++
		s.stats.LastBackoff = t.backoff
		s.sched.At(now+t.backoff, func() { s.restart(t) })
		return
	}
	s.stats.Restarts++
	s.stats.TotalDowntime += now - t.downAt
	t.lastUp = now
}

// alive reports whether the target's process is currently running.
func (s *Supervisor) alive(t *target) bool {
	if t.kind == targetHost {
		p := s.dev.Host(t.name)
		return p != nil && p.Alive()
	}
	for _, svcName := range t.services {
		svc := s.dev.AppService(svcName)
		if svc == nil || !svc.Stub().IsAlive() {
			return false
		}
	}
	return true
}
