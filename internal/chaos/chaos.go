// Package chaos is the lifecycle chaos engine: deterministic, seeded
// process-level fault injection scheduled through the workload
// scheduler's virtual-time event queue. Where internal/faults perturbs
// the defender's *telemetry* (dropped records, jitter, skew), chaos
// perturbs the *processes themselves* — service hosts crash, app-service
// owners die, the defender process is killed and later restored, and
// system_server takes a mid-attack soft reboot. Every decision is a
// pure function of the engine seed and a monotone draw counter
// (splitmix64, the same construction internal/faults uses), so equal
// seeds give byte-identical fault schedules for any worker count.
package chaos

import (
	"time"

	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// Reasons stamped on chaos kills. Workload actors and the supervisor
// key their recovery behaviour off these prefixes.
const (
	ReasonCrash  = "chaos: service crash"
	ReasonReboot = "chaos: soft reboot"
)

// Config declares the lifecycle fault model. The zero value injects
// nothing — a device under a zero Config is byte-identical to one
// without an engine.
type Config struct {
	// Seed drives victim selection; equal seeds give identical schedules.
	Seed int64
	// CrashEvery is the period between service crashes (0 disables).
	// Victims are drawn uniformly from the alive dedicated service
	// hosts, plus running installed apps when CrashApps is set, plus
	// app-service owner processes when CrashAppServices is set.
	CrashEvery       time.Duration
	CrashApps        bool
	CrashAppServices bool
	// RebootAt schedules one mid-run system_server kill — a soft reboot
	// — at the given virtual time (0 disables).
	RebootAt time.Duration
	// DefenderKillEvery is the period between defender process kills
	// (0 disables; requires a DefenderLifecycle). DefenderDowntime is
	// how long the defender stays down before Restore (0 → 500ms).
	DefenderKillEvery time.Duration
	DefenderDowntime  time.Duration
	// MaxFaults bounds total injected faults (crashes + defender kills
	// + reboots); 0 is unlimited.
	MaxFaults int
}

// Enabled reports whether any chaos axis is active.
func (c Config) Enabled() bool {
	return c.CrashEvery > 0 || c.RebootAt > 0 || c.DefenderKillEvery > 0
}

// DefenderLifecycle is what the engine bounces: defense.Bouncer
// implements it. Kill simulates the defender process dying; Restore
// brings a new incarnation up (warm or cold is the lifecycle's choice).
type DefenderLifecycle interface {
	Kill()
	Restore() error
}

// Stats is the engine's fault ledger.
type Stats struct {
	// Crashes counts service/app process kills.
	Crashes int
	// DefenderKills / DefenderRestores count defender bounces.
	DefenderKills    int
	DefenderRestores int
	// Reboots counts injected system_server soft reboots.
	Reboots int
}

// Engine schedules lifecycle faults on a device. Construct it after
// the workload actors are registered — chaos actors fire after
// same-instant workload actors, which keeps the zero-chaos schedule
// untouched — and before Scheduler.Run.
type Engine struct {
	dev       *device.Device
	sched     *workload.Scheduler
	cfg       Config
	lifecycle DefenderLifecycle
	rngState  uint64
	faults    int
	stats     Stats
}

// New builds the engine and registers its fault actors on the
// scheduler. Telemetry gauges are registered only when the config is
// enabled, so a zero-chaos engine never materializes a clone's lazy
// metrics registry.
func New(dev *device.Device, sched *workload.Scheduler, cfg Config, lifecycle DefenderLifecycle) *Engine {
	if cfg.DefenderDowntime == 0 {
		cfg.DefenderDowntime = 500 * time.Millisecond
	}
	e := &Engine{dev: dev, sched: sched, cfg: cfg, lifecycle: lifecycle, rngState: uint64(cfg.Seed)}
	if cfg.CrashEvery > 0 {
		sched.Add(&crashActor{e: e, due: dev.Clock().Now() + cfg.CrashEvery})
	}
	if cfg.DefenderKillEvery > 0 && lifecycle != nil {
		sched.Add(&defenderActor{e: e, due: dev.Clock().Now() + cfg.DefenderKillEvery})
	}
	if cfg.RebootAt > 0 {
		sched.At(cfg.RebootAt, e.reboot)
	}
	if cfg.Enabled() {
		reg := dev.Metrics()
		reg.GaugeFunc("jgre_chaos_crashes_total",
			"Service/app processes killed by the chaos engine.",
			func() float64 { return float64(e.stats.Crashes) })
		reg.GaugeFunc("jgre_chaos_defender_kills_total",
			"Defender processes killed by the chaos engine.",
			func() float64 { return float64(e.stats.DefenderKills) })
		reg.GaugeFunc("jgre_chaos_defender_restores_total",
			"Defender incarnations restored after a chaos kill.",
			func() float64 { return float64(e.stats.DefenderRestores) })
		reg.GaugeFunc("jgre_chaos_reboots_total",
			"system_server soft reboots injected by the chaos engine.",
			func() float64 { return float64(e.stats.Reboots) })
	}
	return e
}

// Stats returns the fault ledger.
func (e *Engine) Stats() Stats { return e.stats }

// exhausted reports whether MaxFaults has been reached.
func (e *Engine) exhausted() bool {
	return e.cfg.MaxFaults > 0 && e.faults >= e.cfg.MaxFaults
}

// draw is a splitmix64 step — stateless apart from the monotone
// counter, like the faults injector's per-record decisions.
func (e *Engine) draw() uint64 {
	e.rngState += 0x9e3779b97f4a7c15
	z := e.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// victims builds the current crash-victim pool in a deterministic
// order: alive dedicated hosts (sorted by name), then running
// installed apps (sorted by uid), then app-service owners — deduped by
// pid so a process reachable through several views is drawn once.
func (e *Engine) victims() []*kernel.Process {
	var out []*kernel.Process
	seen := make(map[kernel.Pid]bool)
	add := func(p *kernel.Process) {
		if p == nil || !p.Alive() || seen[p.Pid()] {
			return
		}
		seen[p.Pid()] = true
		out = append(out, p)
	}
	for _, name := range e.dev.HostNames() {
		add(e.dev.Host(name))
	}
	if e.cfg.CrashApps {
		for _, a := range e.dev.Apps().Installed() {
			add(a.Proc())
		}
	}
	if e.cfg.CrashAppServices {
		for _, name := range e.dev.AppServices().Names() {
			if svc := e.dev.AppService(name); svc != nil {
				add(svc.Owner().Proc())
			}
		}
	}
	return out
}

// crashOne kills one drawn victim. The kernel's death path does the
// rest: binder nodes go dead, death links fire, retained JGRs release.
func (e *Engine) crashOne() {
	victims := e.victims()
	if len(victims) == 0 {
		return
	}
	v := victims[int(e.draw()%uint64(len(victims)))]
	// Crash forensics: snapshot the flight recorder before the kill so
	// the dump still holds the spans leading up to it (no-op untraced).
	e.dev.DumpFlightRecorder("chaos: crash " + v.Name())
	e.dev.Kernel().Kill(v.Pid(), ReasonCrash)
	e.stats.Crashes++
	e.faults++
}

// reboot kills system_server, triggering the device's soft-reboot
// recovery synchronously.
func (e *Engine) reboot() {
	if e.exhausted() {
		return
	}
	ss := e.dev.SystemServer()
	if ss == nil || !ss.Alive() {
		return
	}
	e.dev.DumpFlightRecorder("chaos: reboot")
	e.dev.Kernel().Kill(ss.Pid(), ReasonReboot)
	e.stats.Reboots++
	e.faults++
}

// crashActor fires a service crash every CrashEvery.
type crashActor struct {
	e   *Engine
	due time.Duration
}

func (a *crashActor) Due() time.Duration { return a.due }
func (a *crashActor) Done() bool         { return a.e.exhausted() }
func (a *crashActor) Step() error {
	a.e.crashOne()
	a.due = a.e.dev.Clock().Now() + a.e.cfg.CrashEvery
	return nil
}

// defenderActor bounces the defender every DefenderKillEvery: the kill
// is immediate and the restore is a one-shot timer DefenderDowntime
// later — the blind window the checkpoint sweeps measure.
type defenderActor struct {
	e   *Engine
	due time.Duration
}

func (a *defenderActor) Due() time.Duration { return a.due }
func (a *defenderActor) Done() bool         { return a.e.exhausted() }
func (a *defenderActor) Step() error {
	e := a.e
	e.lifecycle.Kill()
	e.stats.DefenderKills++
	e.faults++
	e.sched.At(e.dev.Clock().Now()+e.cfg.DefenderDowntime, func() {
		if err := e.lifecycle.Restore(); err == nil {
			e.stats.DefenderRestores++
		}
	})
	a.due = e.dev.Clock().Now() + e.cfg.DefenderKillEvery
	return nil
}
