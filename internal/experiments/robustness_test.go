package experiments

import (
	"context"
	"testing"
)

// TestDegradationDropAxisMonotone pins the sweep's by-construction
// guarantee: because every faulted log is a seq-keyed subset of the clean
// trial's log, both the attacker's score retention and the detection
// accuracy can only degrade as the drop rate rises.
func TestDegradationDropAxisMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is slow")
	}
	res, err := DegradationSweep(context.Background(), Quick, "drop", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points, want 5", len(res.Points))
	}
	p0 := res.Points[0]
	if p0.Accuracy != 1 || p0.ScoreRetention != 1 || p0.MeanCoverage != 1 {
		t.Fatalf("zero-fault point not clean: %+v", p0)
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		if cur.ScoreRetention > prev.ScoreRetention {
			t.Fatalf("score retention rose with drop rate: %s %.3f -> %s %.3f",
				prev.Label, prev.ScoreRetention, cur.Label, cur.ScoreRetention)
		}
		if cur.Accuracy > prev.Accuracy {
			t.Fatalf("accuracy rose with drop rate: %s %.2f -> %s %.2f",
				prev.Label, prev.Accuracy, cur.Label, cur.Accuracy)
		}
		if cur.MeanCoverage > prev.MeanCoverage {
			t.Fatalf("coverage rose with drop rate: %s %.3f -> %s %.3f",
				prev.Label, prev.MeanCoverage, cur.Label, cur.MeanCoverage)
		}
	}
	worst := res.Points[len(res.Points)-1]
	if worst.FallbackTrials == 0 {
		t.Fatal("90% drops never triggered the attribution fallback")
	}
	if worst.Accuracy == 0 {
		t.Fatal("defender lost the attacker entirely at the worst point; fallback should hold accuracy")
	}
}

// TestDegradationInnocentKillBound: no sweep point, on any axis, may kill
// more bystanders than the configured guard budget.
func TestDegradationInnocentKillBound(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is slow")
	}
	for _, axis := range DegradationAxes {
		res, err := DegradationSweep(context.Background(), Quick, axis, 0)
		if err != nil {
			t.Fatalf("%s: %v", axis, err)
		}
		if res.InnocentKillBound <= 0 {
			t.Fatalf("%s: sweep ran without a positive guard budget", axis)
		}
		for _, p := range res.Points {
			if p.InnocentKills > res.InnocentKillBound {
				t.Fatalf("%s %s: %d innocent kills exceed bound %d",
					axis, p.Label, p.InnocentKills, res.InnocentKillBound)
			}
		}
	}
}

// TestDegradationUnknownAxis pins the error path the cmd front end
// surfaces.
func TestDegradationUnknownAxis(t *testing.T) {
	if _, err := DegradationSweep(context.Background(), Quick, "cosmic-rays", 1); err == nil {
		t.Fatal("unknown axis accepted")
	}
}
