package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/services"
	"repro/internal/workload"
)

// ChaosAxes are the lifecycle-fault dimensions ChaosSweep accepts.
var ChaosAxes = []string{"crash", "backoff", "checkpoint"}

// ChaosPoint is one point of a lifecycle chaos sweep: a fault/recovery
// configuration and the defender's aggregate behaviour under it.
type ChaosPoint struct {
	// Label is the axis value ("crash=2s", "backoff=500ms", "bounce=warm").
	Label string
	// Trials is how many independent devices this point averaged over.
	Trials int
	// DetectionRate is the fraction of trials whose detection killed the
	// attacker before the step budget ran out — the ROC y-axis.
	DetectionRate float64
	// InnocentKillRate is the mean number of non-attacker apps killed per
	// trial — the ROC x-axis.
	InnocentKillRate float64
	// MeanDetectMillis is the mean virtual time to detection over the
	// trials that detected, in milliseconds (0 when none did).
	MeanDetectMillis float64
	// Crashes / DefenderKills / DefenderRestores / Reboots total the chaos
	// engine's injected faults across trials.
	Crashes          int
	DefenderKills    int
	DefenderRestores int
	Reboots          int
	// SupervisorRestarts totals supervised service recoveries.
	SupervisorRestarts int
	// MeanRecoveryMillis is the mean supervised death→restart gap in
	// virtual milliseconds (0 when nothing was restarted).
	MeanRecoveryMillis float64
	// AttackerRestarts totals the attacker's own chaos-driven relaunches —
	// the attack surviving churn is what makes detection under chaos hard.
	AttackerRestarts int
}

// ChaosResult is one axis of the lifecycle chaos study.
type ChaosResult struct {
	Axis string
	// InnocentKillBound is the guard budget every trial ran under.
	InnocentKillBound int
	Points            []ChaosPoint
}

// chaosPointCfg is one swept configuration.
type chaosPointCfg struct {
	label string
	chaos chaos.Config
	sup   chaos.SupervisorConfig
	mode  defense.BounceMode
}

// chaosAxisPoints returns the configurations swept along one axis,
// gentlest first. Point 0 of the crash axis is the zero-chaos baseline.
func chaosAxisPoints(axis string) ([]chaosPointCfg, error) {
	switch axis {
	case "crash":
		// Service/app churn rate, with a fixed supervisor. Cadences sit at
		// or below the chaos-free time-to-detect (~2.7s quick) so every
		// non-zero point injects churn before the verdict.
		var pts []chaosPointCfg
		for _, every := range []time.Duration{0, 2 * time.Second, time.Second, 500 * time.Millisecond, 250 * time.Millisecond} {
			pts = append(pts, chaosPointCfg{
				label: fmt.Sprintf("crash=%v", every),
				chaos: chaos.Config{CrashEvery: every, CrashApps: true, CrashAppServices: true},
				sup:   chaos.SupervisorConfig{InitialBackoff: 500 * time.Millisecond},
				mode:  defense.BounceSync,
			})
		}
		return pts, nil
	case "backoff":
		// Fixed churn, varying supervisor restart latency: slow restarts
		// starve the benign population (and the attack target) of services.
		// Churn is restricted to supervised targets (service hosts and
		// app-service owners, not plain apps) so every crash exercises the
		// restart path being swept.
		var pts []chaosPointCfg
		for _, b := range []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second, 8 * time.Second} {
			pts = append(pts, chaosPointCfg{
				label: fmt.Sprintf("backoff=%v", b),
				chaos: chaos.Config{CrashEvery: 750 * time.Millisecond, CrashAppServices: true},
				sup:   chaos.SupervisorConfig{InitialBackoff: b},
				mode:  defense.BounceSync,
			})
		}
		return pts, nil
	case "checkpoint":
		// Defender bounced mid-attack under app churn; what it comes back
		// with is the swept variable. none = never killed (ceiling), sync =
		// graceful-shutdown checkpoint, warm = last boundary checkpoint,
		// cold = full re-baseline at the attack-inflated JGR count.
		base := chaos.Config{
			CrashEvery:        3 * time.Second,
			CrashApps:         true,
			DefenderKillEvery: 1200 * time.Millisecond,
			DefenderDowntime:  400 * time.Millisecond,
		}
		none := base
		none.DefenderKillEvery = 0
		return []chaosPointCfg{
			{label: "bounce=none", chaos: none, mode: defense.BounceSync},
			{label: "bounce=sync", chaos: base, mode: defense.BounceSync},
			{label: "bounce=warm", chaos: base, mode: defense.BounceWarm},
			{label: "bounce=cold", chaos: base, mode: defense.BounceCold},
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown chaos axis %q (want crash, backoff or checkpoint)", axis)
	}
}

// chaosOutcome is one trial's raw measurements.
type chaosOutcome struct {
	point, trial     int
	detected         bool
	detectAt         time.Duration
	innocentKills    int
	crashes          int
	defenderKills    int
	defenderRestores int
	reboots          int
	supRestarts      int
	supDowntime      time.Duration
	attackerRestarts int
}

// ChaosSweep measures churn-resilient detection: the defender's
// detection rate vs innocent-kill rate as lifecycle faults worsen along
// one axis — service crash rate, supervisor restart backoff, or
// defender checkpoint mode. Each (point, trial) pair boots its own
// device (seed 1100+trial), runs the benign population plus one
// attacker with auto-restart, a client-side retry policy, the chaos
// engine and a supervisor, and stops at the first detection or the step
// budget — a trial that never detects is a miss, not an error. Results
// are identical for any worker count.
func ChaosSweep(ctx context.Context, scale Scale, axis string, workers int) (*ChaosResult, error) {
	pts, err := chaosAxisPoints(axis)
	if err != nil {
		return nil, err
	}
	trials, population := 2, 12
	if scale == Full {
		trials, population = 4, 30
	}
	type shard struct{ point, trial int }
	var shards []shard
	for p := range pts {
		for t := 0; t < trials; t++ {
			shards = append(shards, shard{point: p, trial: t})
		}
	}
	outcomes, err := parallel.Map(ctx, shards, workers, func(ctx context.Context, _ int, s shard) (chaosOutcome, error) {
		out, err := chaosTrialOnce(ctx, scale, s.trial, population, pts[s.point])
		if err != nil {
			return chaosOutcome{}, fmt.Errorf("experiments: chaos %s trial %d: %w", pts[s.point].label, s.trial, err)
		}
		out.point, out.trial = s.point, s.trial
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Axis: axis, InnocentKillBound: defense.DefaultInnocentKillBudget}
	for p := range pts {
		pt := ChaosPoint{Label: pts[p].label, Trials: trials}
		var detectSum time.Duration
		detected := 0
		for _, o := range outcomes {
			if o.point != p {
				continue
			}
			if o.detected {
				detected++
				detectSum += o.detectAt
			}
			pt.InnocentKillRate += float64(o.innocentKills)
			pt.Crashes += o.crashes
			pt.DefenderKills += o.defenderKills
			pt.DefenderRestores += o.defenderRestores
			pt.Reboots += o.reboots
			pt.SupervisorRestarts += o.supRestarts
			pt.AttackerRestarts += o.attackerRestarts
			pt.MeanRecoveryMillis += float64(o.supDowntime) / float64(time.Millisecond)
		}
		pt.DetectionRate = float64(detected) / float64(trials)
		pt.InnocentKillRate /= float64(trials)
		if detected > 0 {
			pt.MeanDetectMillis = float64(detectSum) / float64(detected) / float64(time.Millisecond)
		}
		if pt.SupervisorRestarts > 0 {
			pt.MeanRecoveryMillis /= float64(pt.SupervisorRestarts)
		} else {
			pt.MeanRecoveryMillis = 0
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// chaosTrialOnce runs one churn trial: benign population plus one
// attacker (all auto-restarting), client retry on dead handles, chaos
// engine, supervisor, and a bounced defender, until the first detection
// or the step budget.
func chaosTrialOnce(ctx context.Context, scale Scale, trial, population int, pt chaosPointCfg) (chaosOutcome, error) {
	dev, err := device.Boot(device.Config{Seed: int64(1100 + trial)})
	if err != nil {
		return chaosOutcome{}, err
	}
	dev.SetClientRetry(services.RetryPolicy{Deadline: 3 * time.Second, Backoff: 50 * time.Millisecond})
	dcfg := defenseThresholds(scale)
	dcfg.InnocentKillBudget = defense.DefaultInnocentKillBudget
	bouncer, err := defense.NewBouncer(dev, dcfg, pt.mode)
	if err != nil {
		return chaosOutcome{}, err
	}
	// Detections accumulate here across defender incarnations — a bounce
	// resets the incarnation's History but not this trial's ledger.
	var dets []defense.Detection
	bouncer.SetOnDetection(func(d defense.Detection) { dets = append(dets, d) })
	abort := func() bool { return ctx.Err() != nil }
	bouncer.SetAbort(abort)

	sched := workload.NewScheduler(dev)
	benign, err := workload.Population(dev, sched, population, int64(trial), 2*time.Second)
	if err != nil {
		return chaosOutcome{}, err
	}
	for _, b := range benign {
		b.SetAutoRestart(true)
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return chaosOutcome{}, err
	}
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		return chaosOutcome{}, err
	}
	atk.SetAutoRestart(true)
	sched.Add(atk)

	ccfg := pt.chaos
	ccfg.Seed = int64(31 + trial)
	engine := chaos.New(dev, sched, ccfg, bouncer)
	sup := chaos.NewSupervisor(dev, sched, pt.sup)
	sup.SetAbort(abort)

	// Under aggressive chaos (a cold-restored defender killed again before
	// it can re-engage) detection legitimately never happens; the victim
	// table just cycles through JGR-exhaustion reboots. The virtual-time
	// horizon — ~10x the chaos-free detection time — turns that into a
	// prompt miss instead of a multi-hour simulated stakeout.
	const horizon = 30 * time.Second
	sched.Run(func() bool {
		return ctx.Err() != nil || len(dets) > 0 || dev.Clock().Now() >= horizon
	}, 4_000_000)
	if err := ctx.Err(); err != nil {
		return chaosOutcome{}, err
	}
	out := chaosOutcome{
		crashes:          engine.Stats().Crashes,
		defenderKills:    engine.Stats().DefenderKills,
		defenderRestores: engine.Stats().DefenderRestores,
		reboots:          engine.Stats().Reboots,
		supRestarts:      sup.Stats().Restarts,
		supDowntime:      sup.Stats().TotalDowntime,
		attackerRestarts: atk.Restarts(),
	}
	if len(dets) > 0 {
		out.detectAt = dev.Clock().Now()
		for _, k := range dets[0].Killed {
			if k == "com.evil.app" {
				out.detected = true
			} else {
				out.innocentKills++
			}
		}
	}
	return out, nil
}
