package experiments

import (
	"errors"
	"time"

	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

// MultiPathResult compares Algorithm 1 with and without the §VI
// path-classification countermeasure against an attacker that rotates
// execution paths to smear its IPC→JGR delay distribution.
type MultiPathResult struct {
	Paths int
	// ClassifiedScore / UnclassifiedScore are the attacker's
	// suspicious-call counts under the two scoring modes over the same
	// recorded window, with the default (wide) pairing window. Periodic
	// attack traffic aliases across delay buckets there, so both stay
	// high — Algorithm 1 is already hard to evade by path smearing.
	ClassifiedScore   int64
	UnclassifiedScore int64
	// TightClassified / TightUnclassified rescore with a pairing window
	// just above the per-call delay, where only causal (call, add) pairs
	// match: here naive scoring credits only the best single path
	// (≈1/Paths of the calls) and classification recovers the full
	// count — the §VI refinement in its purest form.
	TightClassified   int64
	TightUnclassified int64
	TopBenignScore    int64
	AttackerKilled    bool
	Recovered         bool
}

// MultiPathStudy reproduces the §VI discussion: a multi-path attacker
// splits its calls across three execution paths of one interface; naive
// delay correlation only credits the best single path, while classifying
// calls by path signature first recovers the full count.
func MultiPathStudy(scale Scale) (*MultiPathResult, error) {
	dev, err := device.Boot(device.Config{Seed: 123})
	if err != nil {
		return nil, err
	}
	cfg := defenseThresholds(scale)
	cfg.KeepRaw = true
	def, err := defense.New(dev, cfg)
	if err != nil {
		return nil, err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 10, 5, 2*time.Second); err != nil {
		return nil, err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return nil, err
	}
	// A slow-paced interface: the inter-call gap (≈70 ms) far exceeds
	// the per-path delays, so the tight-window rescoring below isolates
	// causal (call, add) pairs. Fast attackers alias regardless of path
	// smearing, as the wide-window numbers show.
	atk, err := workload.NewAttacker(dev, evil, "notification.enqueueToast")
	if err != nil {
		return nil, err
	}
	const paths = 3
	atk.SetPathCount(paths)
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)

	hist := def.History()
	if len(hist) == 0 {
		return nil, errors.New("defender never engaged")
	}
	det := hist[0]
	res := &MultiPathResult{Paths: paths, Recovered: det.Recovered}
	for _, s := range det.Scores {
		if s.Package == evil.Package() {
			res.ClassifiedScore = s.Score
		} else if s.Score > res.TopBenignScore {
			res.TopBenignScore = s.Score
		}
	}
	for _, k := range det.Killed {
		if k == evil.Package() {
			res.AttackerKilled = true
		}
	}

	// Rescore the same window under the three ablation configurations.
	scoreAs := func(c defense.Config) (int64, error) {
		abl, err := defense.New(dev, c)
		if err != nil {
			return 0, err
		}
		for _, s := range abl.ScoreWithDelta(det.RawRecords, det.RawAddTimes, defense.DefaultDelta) {
			if s.Package == evil.Package() {
				return s.Score, nil
			}
		}
		return 0, nil
	}
	noClass := cfg
	noClass.DisablePathClassification = true
	if res.UnclassifiedScore, err = scoreAs(noClass); err != nil {
		return nil, err
	}
	// Tight pairing window: just above the slowest path's delay, so only
	// the causal pair of each call matches.
	tight := cfg
	tight.MaxDelay = 12 * time.Millisecond
	if res.TightClassified, err = scoreAs(tight); err != nil {
		return nil, err
	}
	tightNo := tight
	tightNo.DisablePathClassification = true
	if res.TightUnclassified, err = scoreAs(tightNo); err != nil {
		return nil, err
	}
	return res, nil
}
