package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/services"
	"repro/internal/workload"
)

// PatchRow is one quota point of the §IV-B counterfactual: "what if
// Android patched every interface with a per-process constraint?"
type PatchRow struct {
	// Quota is the per-pid cap applied to every catalogued interface.
	Quota int
	// SingleBlocked: one attacker cannot exhaust the table any more.
	SingleBlocked bool
	// AttackerPeakEntries is the most registrations the attacker got on
	// its target interface.
	AttackerPeakEntries int
	// BenignRefusals counts legitimate registrations the quota rejected
	// across the population — the usability cost (§IV-B: "If the
	// thresholds cannot be correctly set, Android system will have a
	// severe usability problem").
	BenignRefusals int
	// HeavyAppRefusals is the refusal count of the single listener-heavy
	// benign app.
	HeavyAppRefusals int
	// ColludersNeeded is how many cooperating apps (each within quota on
	// every interface) it still takes to reach the 51,200 cap — finite,
	// because all services share system_server's table (§IV-B challenge
	// 2). 0 means the sweep's ceiling did not suffice.
	ColludersNeeded int
}

// PatchStudy sweeps the universal quota and measures, per value: whether
// a single attacker is blocked, what it costs benign apps, and how many
// colluders still break the shared table. Each quota point runs on its
// own patched device (seed 300+idx), so the rows are identical for any
// worker count (0 = one per CPU, 1 = sequential).
func PatchStudy(ctx context.Context, workers int) ([]PatchRow, error) {
	quotas := []int{1, 5, 20, 50, 100}
	return parallel.Map(ctx, quotas, workers, func(_ context.Context, i int, q int) (PatchRow, error) {
		row, err := patchOnce(i, q)
		if err != nil {
			return PatchRow{}, fmt.Errorf("experiments: patch quota %d: %w", q, err)
		}
		return row, nil
	})
}

func patchOnce(idx, quota int) (PatchRow, error) {
	dev, err := device.Boot(device.Config{Seed: int64(300 + idx), UniversalQuota: quota})
	if err != nil {
		return PatchRow{}, err
	}
	row := PatchRow{Quota: quota}

	// --- Usability: a benign population including one heavy registrant.
	sched := workload.NewScheduler(dev)
	benign, err := workload.Population(dev, sched, 12, int64(idx), 800*time.Millisecond)
	if err != nil {
		return PatchRow{}, err
	}
	heavy := benign[0]
	heavy.SetHeavy(40)
	sched.Run(func() bool { return dev.Clock().Now() > 4*time.Minute }, 400000)
	for _, b := range benign {
		row.BenignRefusals += b.Refusals()
	}
	row.HeavyAppRefusals = heavy.Refusals()

	// --- Single attacker: hammer one interface well past the quota.
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return PatchRow{}, err
	}
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		return PatchRow{}, err
	}
	for i := 0; i < 4*quota+200; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	row.AttackerPeakEntries = dev.Service("audio").EntryCount("startWatchingRoutes")
	row.SingleBlocked = dev.SystemServer().Alive() && row.AttackerPeakEntries <= quota
	evil.ForceStop("patch probe done")

	// --- Collusion: apps each staying within quota on every interface
	// still fill the shared table together. Register quota entries on
	// every exploitable interface per app until the table gives out.
	rows := catalog.ExploitableInterfaces()
	for n := 1; n <= 80; n++ {
		app, err := dev.Apps().Install(fmt.Sprintf("com.patch.collude%02d", n))
		if err != nil {
			return PatchRow{}, err
		}
		clients := make(map[string]*services.Client)
		for _, iface := range rows {
			if iface.Permission != "" {
				if !dev.Permissions().ObtainableByApp(iface.Permission) {
					continue
				}
				if err := dev.Permissions().Grant(app.Uid(), iface.Permission); err != nil {
					return PatchRow{}, err
				}
			}
			c, ok := clients[iface.Service]
			if !ok {
				c, err = dev.NewClient(app, iface.Service)
				if err != nil {
					if !dev.SystemServer().Alive() || dev.SoftReboots() > 0 {
						break
					}
					return PatchRow{}, err
				}
				clients[iface.Service] = c
			}
			pkg := app.Package()
			if iface.FullName() == "notification.enqueueToast" {
				pkg = "android"
			}
			for k := 0; k < quota; k++ {
				if err := c.RegisterAs(iface.Method, pkg, c.NewToken()); err != nil {
					break // quota reached, dead service, or reboot
				}
			}
			if dev.SoftReboots() > 0 {
				break
			}
		}
		if dev.SoftReboots() > 0 {
			row.ColludersNeeded = n
			break
		}
	}
	if row.ColludersNeeded == 0 && quota >= 20 {
		return PatchRow{}, errors.New("collusion never exhausted the table; sweep ceiling too low")
	}
	return row, nil
}
