package experiments

import (
	"context"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

func TestHeadlineQuick(t *testing.T) {
	res, err := Headline(context.Background(), Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Funnel
	if f.SystemServices != 104 || f.NativeServices != 5 {
		t.Errorf("census = %d/%d, want 104/5", f.SystemServices, f.NativeServices)
	}
	if f.NativePaths != 147 || f.InitOnlyPaths != 67 {
		t.Errorf("native funnel = %d/%d, want 147/67", f.NativePaths, f.InitOnlyPaths)
	}
	if f.VulnerableServices != 32 {
		t.Errorf("vulnerable services = %d, want 32", f.VulnerableServices)
	}
	if res.ZeroPermServices != 22 {
		t.Errorf("zero-permission services = %d, want 22", res.ZeroPermServices)
	}
	var sys int
	for _, fd := range res.Pipeline.Verify.Confirmed {
		if fd.Source == 1 { // SourceServiceManager
			sys++
		}
	}
	if sys != 54 {
		t.Errorf("confirmed system interfaces = %d, want 54", sys)
	}
}

func TestFig3ShapeFastAndSlow(t *testing.T) {
	curves, err := Fig3AttackCurves(context.Background(), Quick, []string{
		"audio.startWatchingRoutes", // the paper's fastest (≈100 s at full scale)
		"notification.enqueueToast", // the paper's slowest (≈1,800 s)
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	fast, slow := curves[0], curves[1]
	if fast.Duration >= slow.Duration {
		t.Fatalf("fastest %v not faster than slowest %v", fast.Duration, slow.Duration)
	}
	// The ratio should be near the paper's 18× (1800/100); the reduced
	// JGR cap preserves it since both scale linearly.
	ratio := float64(slow.Duration) / float64(fast.Duration)
	if ratio < 9 || ratio > 36 {
		t.Fatalf("slow/fast ratio = %.1f, want near 18", ratio)
	}
	// Curves are monotonically increasing to the cap.
	for _, c := range curves {
		if c.Series.Len() < 2 {
			t.Fatalf("%s: too few samples", c.Interface)
		}
		if c.Series.Max() < 5500 {
			t.Fatalf("%s: peak JGR %v below cap", c.Interface, c.Series.Max())
		}
	}
}

func TestFig4BaselineBands(t *testing.T) {
	res, err := Fig4BenignBaseline(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Observation 1: the JGR table stays in the 1,000–3,000 band.
	if res.JGR.Min() < 1000 || res.JGR.Max() > 3000 {
		t.Errorf("JGR band = [%v, %v], want within [1000, 3000]", res.JGR.Min(), res.JGR.Max())
	}
	// Process count starts at 382 and stays within the paper's 382–421.
	if res.Processes.Points[0].V != 382 {
		t.Errorf("initial processes = %v, want 382", res.Processes.Points[0].V)
	}
	if res.Processes.Max() > 421+10 {
		t.Errorf("process peak = %v, want ≤ ~421", res.Processes.Max())
	}
	if res.MaxConcurrentApps > 45 {
		t.Errorf("concurrent apps peaked at %d; LMK should cap near 39", res.MaxConcurrentApps)
	}
}

func TestFig5CostGrows(t *testing.T) {
	res, err := Fig5ExecutionGrowth(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExecTimes) != res.Calls {
		t.Fatalf("samples = %d, want %d", len(res.ExecTimes), res.Calls)
	}
	early := avg(res.ExecTimes[:200])
	late := avg(res.ExecTimes[len(res.ExecTimes)-200:])
	if late < early*2 {
		t.Fatalf("execution time did not grow: early %v, late %v", early, late)
	}
}

func avg(ds []time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func TestFig6DeltasSmallAndClose(t *testing.T) {
	res, err := Fig6LatencyCDF(context.Background(), Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerInterface) != len(catalog.ExploitableInterfaces()) {
		t.Fatalf("interfaces measured = %d, want %d", len(res.PerInterface), len(catalog.ExploitableInterfaces()))
	}
	for name, s := range res.PerInterface {
		// Fig. 6's x-axis tops out at 8,000 µs except for the growing
		// telephony outlier; spreads (Δ) are bounded per interface.
		if s.Max-s.Min > 4000 {
			t.Errorf("%s: execution spread %0.f µs too wide", name, s.Max-s.Min)
		}
		if s.Max > 60000 {
			t.Errorf("%s: execution time %0.f µs implausible", name, s.Max)
		}
	}
}

func TestFig8AttackerAlwaysDominates(t *testing.T) {
	rows, err := Fig8SingleAttacker(context.Background(), Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("only %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Detected || !r.Killed {
			t.Errorf("%s: detected=%v killed=%v", r.Interface, r.Detected, r.Killed)
		}
		if r.MaliciousScore <= 2*r.TopBenignScore {
			t.Errorf("%s: malicious score %d not dominant over benign %d",
				r.Interface, r.MaliciousScore, r.TopBenignScore)
		}
	}
}

func TestFig9CollusionSweep(t *testing.T) {
	res, err := Fig9Colluders(context.Background(), Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Error("victim did not recover")
	}
	if len(res.Top) != len(PaperDeltas) {
		t.Fatalf("sweep size = %d", len(res.Top))
	}
	colluder := make(map[string]bool)
	for _, c := range res.Colluders {
		colluder[c] = true
	}
	for i, scores := range res.Top {
		if len(scores) < 4 {
			t.Fatalf("Δ=%v: only %d scored apps", res.Deltas[i], len(scores))
		}
		for j := 0; j < 4; j++ {
			if !colluder[scores[j].Package] {
				t.Errorf("Δ=%v: rank %d is %s, want a colluder", res.Deltas[i], j+1, scores[j].Package)
			}
		}
	}
}

func TestResponseDelaysBounded(t *testing.T) {
	rows, err := ResponseDelays(context.Background(), Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	var midi *DelayRow
	slow := 0
	for i := range rows {
		r := &rows[i]
		if !r.Defended {
			t.Errorf("%s: defense failed", r.Interface)
		}
		if r.Interface == "midi.registerDeviceServer" {
			midi = r
		}
		if r.AnalysisTime > time.Second {
			slow++
		}
		// §V-D1: every delay is far below the fastest attack (~100 s).
		if r.AnalysisTime > 10*time.Second {
			t.Errorf("%s: delay %v too large", r.Interface, r.AnalysisTime)
		}
	}
	if midi == nil {
		t.Fatal("midi.registerDeviceServer not measured")
	}
	// The paper's outlier: the midi interface has the largest delay.
	for _, r := range rows {
		if r.Interface != midi.Interface && r.AnalysisTime > midi.AnalysisTime {
			t.Errorf("%s delay %v exceeds the midi outlier %v", r.Interface, r.AnalysisTime, midi.AnalysisTime)
		}
	}
}

func TestFig10OverheadShape(t *testing.T) {
	res, err := Fig10IPCOverhead(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 50 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Latency grows with payload on both curves; defense is always the
	// upper curve.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Stock <= first.Stock || last.WithDefense <= first.WithDefense {
		t.Fatal("latency does not grow with payload")
	}
	for _, r := range res.Rows {
		if r.WithDefense <= r.Stock {
			t.Fatalf("payload %d KB: defense %v not above stock %v", r.PayloadKB, r.WithDefense, r.Stock)
		}
	}
	// Paper: at most ≈1.247 ms extra per call, ≈46.7% aggregate.
	if res.MaxAdded > 1500*time.Microsecond || res.MaxAdded < 500*time.Microsecond {
		t.Errorf("max added = %v, want ≈1.247 ms", res.MaxAdded)
	}
	if res.OverheadPercent < 35 || res.OverheadPercent > 60 {
		t.Errorf("overhead = %.1f%%, want ≈46.7%%", res.OverheadPercent)
	}
}

func TestProtectedBypassMatrix(t *testing.T) {
	rows, err := ProtectedBypass(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("protected interfaces probed = %d, want 13", len(rows))
	}
	stillVulnerable := 0
	for _, r := range rows {
		switch r.Protection {
		case catalog.HelperGuard:
			if !r.HelperBounded {
				t.Errorf("%s: helper path not bounded", r.Interface)
			}
			if !r.DirectUnbounded {
				t.Errorf("%s: direct path did not bypass the helper", r.Interface)
			}
		case catalog.PerProcessGuard:
			if r.SpoofUsed && !r.DirectUnbounded {
				t.Errorf("%s: spoof did not bypass the quota", r.Interface)
			}
			if !r.SpoofUsed && r.DirectUnbounded {
				t.Errorf("%s: quota failed without a spoof", r.Interface)
			}
		}
		if r.DirectUnbounded {
			stillVulnerable++
		}
	}
	// §I: "among the 10 system services that have been protected, 8 ...
	// are still vulnerable" — interface-wise, 10 of the 13 protected
	// interfaces remain exploitable.
	if stillVulnerable != 10 {
		t.Errorf("still-vulnerable protected interfaces = %d, want 10", stillVulnerable)
	}
}

func TestMultiPathStudy(t *testing.T) {
	res, err := MultiPathStudy(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AttackerKilled || !res.Recovered {
		t.Fatalf("multi-path attacker not stopped: %+v", res)
	}
	// Wide pairing window: periodic attack traffic aliases across delay
	// buckets, so even naive scoring stays high — path smearing does not
	// evade Algorithm 1 (the §VI claim).
	if res.UnclassifiedScore <= 2*res.TopBenignScore {
		t.Errorf("wide-window unclassified score %d not dominant over benign %d",
			res.UnclassifiedScore, res.TopBenignScore)
	}
	if res.ClassifiedScore < res.UnclassifiedScore {
		t.Errorf("classification lowered the attacker's score: %d < %d",
			res.ClassifiedScore, res.UnclassifiedScore)
	}
	// Tight window (causal pairs only): naive scoring credits one path
	// in three; classification recovers the full count.
	if res.TightClassified < 2*res.TightUnclassified {
		t.Errorf("tight-window classified %d not well above unclassified %d",
			res.TightClassified, res.TightUnclassified)
	}
}

func TestThresholdAblation(t *testing.T) {
	rows, err := ThresholdAblation(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if !r.Defended {
			t.Errorf("%d/%d: defense failed", r.Alarm, r.Engage)
		}
		if r.Margin() <= 0 {
			t.Errorf("%d/%d: no safety margin left (peak %d)", r.Alarm, r.Engage, r.PeakJGR)
		}
		if i > 0 {
			// The trade-off the ablation quantifies: higher thresholds
			// engage later and eat into the abort margin.
			if r.TimeToEngage <= rows[i-1].TimeToEngage {
				t.Errorf("time-to-engage not monotone: %v then %v", rows[i-1].TimeToEngage, r.TimeToEngage)
			}
			if r.Margin() >= rows[i-1].Margin() {
				t.Errorf("margin not shrinking: %d then %d", rows[i-1].Margin(), r.Margin())
			}
		}
	}
	// The paper's 4,000/12,000 sits in the sweep and keeps at least 3/4
	// of the table as margin.
	if rows[2].Alarm != 4000 || rows[2].Engage != 12000 {
		t.Fatalf("paper config missing: %+v", rows[2])
	}
	if rows[2].Margin() < 7*catalog.JGRThreshold/10 {
		t.Errorf("paper config margin = %d, want ≥ 7/10 of the table", rows[2].Margin())
	}
}

// TestLimitationStudy pins the §VI blind spot: a covert (non-Binder)
// exhaustion channel triggers the monitor but defeats attribution.
func TestLimitationStudy(t *testing.T) {
	res, err := LimitationStudy(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Engaged {
		t.Error("JGR monitor never engaged")
	}
	if res.AttackerScored {
		t.Error("covert attacker appeared in Algorithm 1 scores despite leaving no IPC records")
	}
	if res.AttackerKilled {
		t.Error("defender killed the covert attacker without evidence")
	}
	if !res.Rebooted {
		t.Error("device survived; the limitation demo should end in a reboot")
	}
}

// TestNoFalsePositivesUnderBenignLoad: a defended device under pure
// benign load must never engage, let alone kill.
func TestNoFalsePositivesUnderBenignLoad(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	def, err := defense.New(dev, defenseThresholds(Quick))
	if err != nil {
		t.Fatal(err)
	}
	sched := workload.NewScheduler(dev)
	apps, err := workload.Population(dev, sched, 30, 66, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(func() bool { return dev.Clock().Now() > 10*time.Minute }, 500000)
	total := 0
	for _, b := range apps {
		total += b.Calls()
	}
	if total < 5000 {
		t.Fatalf("population only made %d calls", total)
	}
	if n := len(def.History()); n != 0 {
		t.Fatalf("defender engaged %d times under benign load", n)
	}
	for _, a := range apps {
		if !a.App().Running() {
			t.Fatalf("benign app %s died", a.App().Package())
		}
	}
}

// TestObservation2 pins the paper's Observation 2: per interface, the
// IPC→JGR delay is Delay + Δ with a small bounded Δ; fleet-wide mean Δ
// lands near the 1.8 ms the paper derives.
func TestObservation2(t *testing.T) {
	res, err := Observation2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows, meanDelta := res.Rows, res.MeanDelta
	if len(rows) != len(catalog.ExploitableInterfaces()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Delay <= 0 {
			t.Errorf("%s: non-positive Delay %v", r.Interface, r.Delay)
		}
		spec, _ := catalog.InterfaceByName(r.Interface)
		// Observed deviation is bounded by the catalogued jitter (plus a
		// bucket of slack for driver costs).
		if r.Delta > spec.Cost.Jitter+time.Millisecond {
			t.Errorf("%s: Δ %v exceeds catalogued jitter %v", r.Interface, r.Delta, spec.Cost.Jitter)
		}
	}
	if meanDelta < 800*time.Microsecond || meanDelta > 2600*time.Microsecond {
		t.Errorf("fleet mean Δ = %v, want near the paper's 1.8 ms", meanDelta)
	}
}

// TestPatchStudy pins the §IV-B counterfactual: universal per-process
// quotas block any single attacker, cost benign heavy apps refusals at
// small quota values, and still fall to enough colluders because every
// service shares system_server's table.
func TestPatchStudy(t *testing.T) {
	rows, err := PatchStudy(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if !r.SingleBlocked {
			t.Errorf("quota %d: single attacker not blocked (peak %d)", r.Quota, r.AttackerPeakEntries)
		}
		if i > 0 && r.Quota > rows[i-1].Quota && r.HeavyAppRefusals > rows[i-1].HeavyAppRefusals {
			t.Errorf("heavy-app refusals grew with a LARGER quota: q=%d→%d refusals %d→%d",
				rows[i-1].Quota, r.Quota, rows[i-1].HeavyAppRefusals, r.HeavyAppRefusals)
		}
	}
	// Tiny quotas break the heavy-but-legitimate app...
	if rows[0].HeavyAppRefusals == 0 {
		t.Error("quota 1: heavy benign app was not refused — usability cost invisible")
	}
	// ...generous quotas don't...
	if last := rows[len(rows)-1]; last.HeavyAppRefusals != 0 {
		t.Errorf("quota %d: heavy app still refused %d times", last.Quota, last.HeavyAppRefusals)
	}
	// ...but generous quotas fall to fewer colluders.
	if rows[3].ColludersNeeded == 0 || rows[4].ColludersNeeded == 0 {
		t.Error("large-quota collusion did not exhaust the table")
	}
	if rows[4].ColludersNeeded > rows[3].ColludersNeeded {
		t.Errorf("colluders needed rose with a larger quota: %d then %d",
			rows[3].ColludersNeeded, rows[4].ColludersNeeded)
	}
}

// TestFig3AllInterfacesMatchCatalogTargets attacks every exploitable
// interface (reduced cap) and checks each realized duration against the
// catalogued Fig. 3 target, scaled by the cap ratio. This pins the whole
// fleet's attack dynamics, not just the fastest/slowest envelope.
func TestFig3AllInterfacesMatchCatalogTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("attacks all 54 interfaces")
	}
	curves, err := Fig3AttackCurves(context.Background(), Quick, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != len(catalog.ExploitableInterfaces()) {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		spec, ok := catalog.InterfaceByName(c.Interface)
		if !ok {
			t.Fatalf("unknown curve %s", c.Interface)
		}
		// Scale the full-table target down by the quick cap's share of
		// the real table (both attacks start from the same baseline).
		scale := float64(Quick.jgrCap()-1500) / float64(catalog.JGRThreshold-1500)
		want := time.Duration(float64(spec.Cost.AttackSeconds) * scale * float64(time.Second))
		if c.Duration < want*6/10 || c.Duration > want*15/10 {
			t.Errorf("%s: realized %v, catalog target ≈%v", c.Interface, c.Duration, want)
		}
	}
}
