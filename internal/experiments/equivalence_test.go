package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/catalog"
)

// mustJSON marshals a sweep result for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertEquivalent runs a sweep at workers=1 and workers=8 and requires
// byte-identical JSON — the engine's core guarantee: per-shard isolation
// plus in-order merging makes results independent of the pool size.
func assertEquivalent(t *testing.T, name string, run func(workers int) (any, error)) {
	t.Helper()
	seq, err := run(1)
	if err != nil {
		t.Fatalf("%s workers=1: %v", name, err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatalf("%s workers=8: %v", name, err)
	}
	js, jp := mustJSON(t, seq), mustJSON(t, par)
	if !bytes.Equal(js, jp) {
		t.Errorf("%s: workers=1 and workers=8 outputs differ\nseq: %.400s\npar: %.400s", name, js, jp)
	}
}

func TestFig3ParallelEquivalence(t *testing.T) {
	// A slice of the full sweep keeps the test fast; every interface runs
	// the same attackOnce shard either way.
	var ifaces []string
	for i, row := range catalog.ExploitableInterfaces() {
		if i%7 == 0 {
			ifaces = append(ifaces, row.FullName())
		}
	}
	assertEquivalent(t, "fig3", func(workers int) (any, error) {
		return Fig3AttackCurvesContext(context.Background(), Quick, ifaces, workers)
	})
}

func TestFig3DoesNotMutateCallerSlice(t *testing.T) {
	// A caller's empty-but-capacious slice must never receive the
	// interface list through its backing array.
	backing := make([]string, 3, 60)
	backing[0], backing[1], backing[2] = "a", "b", "c"
	arg := backing[:0]
	_, _ = Fig3AttackCurvesContext(context.Background(), Quick, arg, 1)
	if backing[0] != "a" || backing[1] != "b" || backing[2] != "c" {
		t.Errorf("caller's backing array mutated: %v", backing[:3])
	}
}

func TestFig6ParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("meters all 54 interfaces twice")
	}
	assertEquivalent(t, "fig6", func(workers int) (any, error) {
		return Fig6LatencyCDFContext(context.Background(), Quick, workers)
	})
}

func TestFig8ParallelEquivalence(t *testing.T) {
	assertEquivalent(t, "fig8", func(workers int) (any, error) {
		return Fig8SingleAttackerContext(context.Background(), Quick, workers)
	})
}

func TestResponseDelaysParallelEquivalence(t *testing.T) {
	assertEquivalent(t, "delays", func(workers int) (any, error) {
		return ResponseDelaysContext(context.Background(), Quick, workers)
	})
}

func TestThresholdAblationParallelEquivalence(t *testing.T) {
	assertEquivalent(t, "thresholds", func(workers int) (any, error) {
		return ThresholdAblationContext(context.Background(), workers)
	})
}
