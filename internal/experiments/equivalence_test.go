package experiments

import (
	"context"
	"testing"
)

// The workers=1-vs-N equivalence of every parallel sweep is asserted by
// the registry-driven tests in internal/scenario, which enumerate
// scenario.List() instead of a hand-maintained list here.

func TestFig3DoesNotMutateCallerSlice(t *testing.T) {
	// A caller's empty-but-capacious slice must never receive the
	// interface list through its backing array.
	backing := make([]string, 3, 60)
	backing[0], backing[1], backing[2] = "a", "b", "c"
	arg := backing[:0]
	_, _ = Fig3AttackCurves(context.Background(), Quick, arg, 1)
	if backing[0] != "a" || backing[1] != "b" || backing[2] != "c" {
		t.Errorf("caller's backing array mutated: %v", backing[:3])
	}
}
