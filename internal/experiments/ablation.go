package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// ThresholdRow is one point of the defender-threshold ablation.
type ThresholdRow struct {
	// Alarm/Engage are the runtime-extension thresholds under test (the
	// paper ships 4,000/12,000).
	Alarm, Engage int
	// TimeToEngage is how long the attack ran before the defender acted.
	TimeToEngage time.Duration
	// PeakJGR is the victim's highest table occupancy — the safety
	// margin is JGRThreshold − PeakJGR.
	PeakJGR int
	// Records analysed and the virtual analysis time.
	Records      int
	AnalysisTime time.Duration
	Defended     bool
}

// Margin returns the distance between the observed peak and the abort
// threshold.
func (r ThresholdRow) Margin() int { return catalog.JGRThreshold - r.PeakJGR }

// ThresholdAblation studies the defender's alarm/engage thresholds (a
// design choice DESIGN.md calls out): lower thresholds act sooner but
// analyse noisier, smaller windows; higher ones risk eating into the
// safety margin below the 51,200 abort line. The paper's 4,000/12,000
// leaves ≈4/5 of the table as margin; this sweep quantifies the range.
// Each threshold pair runs on its own device (seed 200+idx), so the rows
// are identical for any worker count (0 = one per CPU, 1 = sequential).
func ThresholdAblation(ctx context.Context, workers int) ([]ThresholdRow, error) {
	configs := []struct{ alarm, engage int }{
		{1000, 3000},
		{2000, 6000},
		{4000, 12000}, // the paper's choice
		{8000, 24000},
		{13000, 40000},
	}
	return parallel.Map(ctx, configs, workers, func(_ context.Context, i int, c struct{ alarm, engage int }) (ThresholdRow, error) {
		row, err := thresholdOnce(i, c.alarm, c.engage)
		if err != nil {
			return ThresholdRow{}, fmt.Errorf("experiments: threshold %d/%d: %w", c.alarm, c.engage, err)
		}
		return row, nil
	})
}

func thresholdOnce(idx, alarm, engage int) (ThresholdRow, error) {
	dev, err := device.Boot(device.Config{Seed: int64(200 + idx)})
	if err != nil {
		return ThresholdRow{}, err
	}
	def, err := defense.New(dev, defense.Config{AlarmThreshold: alarm, EngageThreshold: engage})
	if err != nil {
		return ThresholdRow{}, err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 10, int64(idx), 2*time.Second); err != nil {
		return ThresholdRow{}, err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return ThresholdRow{}, err
	}
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		return ThresholdRow{}, err
	}
	sched.Add(atk)
	start := dev.Clock().Now()
	sched.Run(func() bool { return len(def.History()) > 0 || dev.SoftReboots() > 0 }, 3_000_000)

	row := ThresholdRow{Alarm: alarm, Engage: engage}
	hist := def.History()
	if len(hist) == 0 {
		return ThresholdRow{}, errors.New("defender never engaged")
	}
	det := hist[0]
	row.TimeToEngage = det.EngagedAt - start
	row.Records = det.Records
	row.AnalysisTime = det.AnalysisTime
	row.Defended = det.Recovered && dev.SoftReboots() == 0
	row.PeakJGR = dev.SystemServer().VM().PeakGlobalRefCount()
	return row, nil
}
