package experiments

import (
	"errors"

	"repro/internal/defense"
	"repro/internal/device"
)

// LimitationResult makes the paper's §VI false-negative discussion
// concrete: a JGRE attack through a non-Binder IPC surface (broadcast
// receivers / ASHMEM / sockets) leaves no binder-driver evidence, so the
// defender's alarm fires but Algorithm 1 has nobody to blame.
type LimitationResult struct {
	// Engaged: the JGR monitor noticed the exhaustion pressure.
	Engaged bool
	// AttackerScored: whether any score pointed at the attacker (it must
	// not — there are no IPC records for the covert channel).
	AttackerScored bool
	// AttackerKilled and Rebooted describe the outcome: without
	// attribution, recovery fails and the device eventually goes down.
	AttackerKilled bool
	Rebooted       bool
}

// LimitationStudy runs the covert-channel attack against a defended
// device.
func LimitationStudy(scale Scale) (*LimitationResult, error) {
	dev, err := device.Boot(device.Config{Seed: 222})
	if err != nil {
		return nil, err
	}
	def, err := defense.New(dev, defenseThresholds(scale))
	if err != nil {
		return nil, err
	}
	evil, err := dev.Apps().Install("com.covert.app")
	if err != nil {
		return nil, err
	}
	proc := evil.Start()

	res := &LimitationResult{}
	limit := dev.SystemServer().VM().MaxGlobal() + 10000
	for i := 0; i < limit && dev.SoftReboots() == 0; i++ {
		if !proc.Alive() {
			res.AttackerKilled = true
			break
		}
		if err := dev.RegisterBroadcastReceiver(proc); err != nil {
			break // victim aborted mid-registration
		}
	}
	res.Rebooted = dev.SoftReboots() > 0
	for _, det := range def.History() {
		res.Engaged = true
		for _, s := range det.Scores {
			if s.Package == evil.Package() {
				res.AttackerScored = true
			}
		}
		for _, k := range det.Killed {
			if k == evil.Package() {
				res.AttackerKilled = true
			}
		}
	}
	if !res.Engaged && !res.Rebooted {
		return nil, errors.New("neither engagement nor reboot: attack fizzled")
	}
	return res, nil
}
