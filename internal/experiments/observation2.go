package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// Obs2Row is one interface's IPC→JGR delay profile, the quantity behind
// the paper's Observation 2: "the duration from an IPC call being invoked
// to the creation of a JGR entry varies within a small value", expressed
// as Delay + Δ with Delay a stable floor and Δ ≥ 0 a bounded deviation.
type Obs2Row struct {
	Interface string
	Samples   int
	// Delay is the observed floor (the minimum IPC→JGR latency).
	Delay time.Duration
	// Delta is the observed deviation bound (max − min).
	Delta time.Duration
	// P90 of the raw delays, for the distribution's shape.
	P90 time.Duration
}

// Obs2Result bundles the per-interface delay rows with the fleet-wide
// mean Δ (the paper derives 1.8 ms and ships it as the defender default).
type Obs2Result struct {
	Rows      []Obs2Row
	MeanDelta time.Duration
}

// Observation2 measures, for every exploitable system interface, the
// delay between each logged IPC record and the JGR creation it causes —
// exactly the data the defender's Algorithm 1 keys on. It returns one row
// per interface plus the fleet-wide mean Δ. The interfaces share one
// instrumented device on purpose (the hook watches system_server's table
// across the whole session), so this measurement is inherently sequential.
func Observation2(scale Scale) (*Obs2Result, error) {
	calls := 120
	if scale == Full {
		calls = 1000
	}
	dev, err := device.Boot(device.Config{Seed: 91})
	if err != nil {
		return nil, err
	}
	if err := dev.Driver().EnableIPCLogging(); err != nil {
		return nil, err
	}

	// Observe every JGR add in system_server with its timestamp.
	var adds []time.Duration
	dev.SystemServer().VM().AddJGRHook(func(ev art.JGREvent) {
		if ev.Op == art.OpAdd {
			adds = append(adds, ev.Time)
		}
	})

	var rows []Obs2Row
	var deltaSum time.Duration
	targets := catalog.ExploitableInterfaces()
	for idx, row := range targets {
		app, err := dev.Apps().Install(fmt.Sprintf("com.obs2.meter%03d", idx))
		if err != nil {
			return nil, err
		}
		atk, err := workload.NewAttacker(dev, app, row.FullName())
		if err != nil {
			return nil, err
		}
		adds = adds[:0]
		if err := dev.Driver().TruncateLog(); err != nil {
			return nil, err
		}
		for i := 0; i < calls; i++ {
			if err := atk.Step(); err != nil {
				return nil, fmt.Errorf("experiments: obs2 %s: %w", row.FullName(), err)
			}
		}
		if _, err := dev.Driver().FlushLog(); err != nil {
			return nil, err
		}
		records, err := dev.Driver().ReadLog(kernel.SystemUid)
		if err != nil {
			return nil, err
		}
		delays := causalDelays(records, adds, app.Uid())
		if len(delays) == 0 {
			return nil, fmt.Errorf("experiments: obs2 %s: no delay samples", row.FullName())
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		o := Obs2Row{
			Interface: row.FullName(),
			Samples:   len(delays),
			Delay:     delays[0],
			Delta:     delays[len(delays)-1] - delays[0],
			P90:       delays[len(delays)*9/10],
		}
		rows = append(rows, o)
		deltaSum += o.Delta
		app.ForceStop("obs2 done") // release entries before the next interface
	}
	return &Obs2Result{Rows: rows, MeanDelta: deltaSum / time.Duration(len(rows))}, nil
}

// causalDelays pairs each of the attacker's IPC records with the first
// JGR add that follows it (the attacker is the only caller while its
// window is measured).
func causalDelays(records []binder.IPCRecord, adds []time.Duration, uid kernel.Uid) []time.Duration {
	sorted := append([]time.Duration(nil), adds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []time.Duration
	for _, r := range records {
		if r.FromUid != uid {
			continue
		}
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= r.Time })
		if i < len(sorted) {
			out = append(out, sorted[i]-r.Time)
		}
	}
	return out
}
