package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// DegradationAxes are the fault dimensions DegradationSweep accepts.
var DegradationAxes = []string{"drop", "jitter", "ring"}

// DegPoint is one point of a degradation sweep: a fault configuration and
// the defender's aggregate behaviour under it.
type DegPoint struct {
	// Label is the axis value ("drop=0.50", "jitter=5ms", "ring=256").
	Label string
	// Faults is the injected fault model for this point.
	Faults faults.Config
	// Trials is how many independent devices this point averaged over.
	Trials int
	// Accuracy is the fraction of trials whose first engagement killed the
	// attacker.
	Accuracy float64
	// ScoreRetention is the mean, over trials, of the attacker's
	// correlation score at this point divided by its score at the
	// zero-fault point of the same trial seed. The stateless drop model
	// makes each faulted log a subset of the clean one, so along the drop
	// axis this is monotone non-increasing by construction.
	ScoreRetention float64
	// MeanCoverage is the mean delivered/generated record ratio over the
	// engagement windows.
	MeanCoverage float64
	// MeanResponseDelayMicros is the mean source-identification delay
	// (Detection.AnalysisTime), in virtual microseconds.
	MeanResponseDelayMicros float64
	// FallbackTrials counts trials where the defender abandoned
	// correlation for retained-ref attribution.
	FallbackTrials int
	// InnocentKills is the worst-case (max over trials) number of
	// non-attacker apps killed in the first engagement.
	InnocentKills int
	// GuardStops totals the low-confidence kills the innocent-kill guard
	// refused across trials.
	GuardStops int
}

// DegradationResult is one axis of the robustness study: defender accuracy
// and response behaviour as one fault dimension worsens.
type DegradationResult struct {
	Axis string
	// InnocentKillBound is the guard budget every trial ran under; no
	// point may exceed it in InnocentKills.
	InnocentKillBound int
	Points            []DegPoint
}

// degAxisPoints returns the fault configurations swept along one axis,
// worst last. Every axis starts from the zero-fault configuration so the
// first point doubles as the per-trial retention baseline.
func degAxisPoints(axis string) ([]faults.Config, []string, error) {
	switch axis {
	case "drop":
		var cfgs []faults.Config
		var labels []string
		for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
			cfgs = append(cfgs, faults.Config{DropRate: r})
			labels = append(labels, fmt.Sprintf("drop=%.2f", r))
		}
		return cfgs, labels, nil
	case "jitter":
		var cfgs []faults.Config
		var labels []string
		for _, j := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
			cfgs = append(cfgs, faults.Config{MaxJitter: j})
			labels = append(labels, fmt.Sprintf("jitter=%v", j))
		}
		return cfgs, labels, nil
	case "ring":
		// 0 is the unbounded kernel buffer; smaller rings evict more.
		var cfgs []faults.Config
		var labels []string
		for _, n := range []int{0, 4096, 1024, 256, 64} {
			cfgs = append(cfgs, faults.Config{RingCapacity: n})
			labels = append(labels, fmt.Sprintf("ring=%d", n))
		}
		return cfgs, labels, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown degradation axis %q (want drop, jitter or ring)", axis)
	}
}

// degOutcome is one trial's raw measurements, before per-point reduction.
type degOutcome struct {
	point, trial  int
	killed        bool
	attackerScore int64
	coverage      float64
	analysisTime  time.Duration
	fallback      bool
	innocentKills int
	guardStops    int
}

// DegradationSweep measures how gracefully the defender degrades as one
// telemetry fault dimension worsens: record drop rate, timestamp jitter,
// or kernel ring-buffer size. Each (point, trial) pair boots its own
// device (seed 900+trial — the same seed across points, so the stateless
// drop model makes every faulted log a subset of the clean trial's log and
// the drop axis degrades monotonically by construction). Every trial runs
// the benign population plus one attacker, under the innocent-kill guard
// (budget defense.DefaultInnocentKillBudget), and stops at the first
// engagement. Results are identical for any worker count.
func DegradationSweep(ctx context.Context, scale Scale, axis string, workers int) (*DegradationResult, error) {
	cfgs, labels, err := degAxisPoints(axis)
	if err != nil {
		return nil, err
	}
	trials, population := 2, 15
	if scale == Full {
		trials, population = 4, 40
	}
	type shard struct{ point, trial int }
	var shards []shard
	for p := range cfgs {
		for t := 0; t < trials; t++ {
			shards = append(shards, shard{point: p, trial: t})
		}
	}
	outcomes, err := parallel.Map(ctx, shards, workers, func(_ context.Context, _ int, s shard) (degOutcome, error) {
		out, err := degTrialOnce(scale, s.trial, population, cfgs[s.point])
		if err != nil {
			return degOutcome{}, fmt.Errorf("experiments: degradation %s trial %d: %w", labels[s.point], s.trial, err)
		}
		out.point, out.trial = s.point, s.trial
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Per-trial retention baselines come from point 0 (zero faults).
	baseline := make([]int64, trials)
	for _, o := range outcomes {
		if o.point == 0 {
			baseline[o.trial] = o.attackerScore
		}
	}
	res := &DegradationResult{Axis: axis, InnocentKillBound: defense.DefaultInnocentKillBudget}
	for p := range cfgs {
		pt := DegPoint{Label: labels[p], Faults: cfgs[p], Trials: trials}
		var retention, coverage, delay float64
		for _, o := range outcomes {
			if o.point != p {
				continue
			}
			if o.killed {
				pt.Accuracy++
			}
			if baseline[o.trial] > 0 {
				retention += float64(o.attackerScore) / float64(baseline[o.trial])
			}
			coverage += o.coverage
			delay += float64(o.analysisTime) / float64(time.Microsecond)
			if o.fallback {
				pt.FallbackTrials++
			}
			if o.innocentKills > pt.InnocentKills {
				pt.InnocentKills = o.innocentKills
			}
			pt.GuardStops += o.guardStops
		}
		pt.Accuracy /= float64(trials)
		pt.ScoreRetention = retention / float64(trials)
		pt.MeanCoverage = coverage / float64(trials)
		pt.MeanResponseDelayMicros = delay / float64(trials)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// degTrialOnce runs one faulted engagement: benign population plus one
// attacker on a fast vulnerable interface, defender with the innocent-kill
// guard engaged, until the first detection.
func degTrialOnce(scale Scale, trial, population int, fcfg faults.Config) (degOutcome, error) {
	dev, err := device.Boot(device.Config{Seed: int64(900 + trial), Faults: fcfg})
	if err != nil {
		return degOutcome{}, err
	}
	cfg := defenseThresholds(scale)
	cfg.InnocentKillBudget = defense.DefaultInnocentKillBudget
	def, err := defense.New(dev, cfg)
	if err != nil {
		return degOutcome{}, err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, population, int64(trial), 2*time.Second); err != nil {
		return degOutcome{}, err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return degOutcome{}, err
	}
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		return degOutcome{}, err
	}
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)
	hist := def.History()
	if len(hist) == 0 {
		return degOutcome{}, errors.New("defender never engaged")
	}
	det := hist[0]
	out := degOutcome{
		coverage:     det.Coverage,
		analysisTime: det.AnalysisTime,
		fallback:     det.FallbackUsed,
		guardStops:   det.GuardStops,
	}
	// The retention metric tracks Algorithm 1's evidence quality, so read
	// the correlation ranking even when the kill decision fell back to
	// retained-ref attribution.
	scores := det.Scores
	if det.FallbackUsed {
		scores = det.Correlation
	}
	for _, s := range scores {
		if s.Package == "com.evil.app" {
			out.attackerScore = s.Score
		}
	}
	for _, k := range det.Killed {
		if k == "com.evil.app" {
			out.killed = true
		} else {
			out.innocentKills++
		}
	}
	return out, nil
}
