package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/services"
	"repro/internal/workload"
)

// defenseThresholds scales the defender thresholds with the experiment
// size, keeping the paper's 1:3 alarm:engage ratio.
func defenseThresholds(scale Scale) defense.Config {
	if scale == Full {
		return defense.Config{} // paper defaults: 4,000 / 12,000
	}
	return defense.Config{AlarmThreshold: 400, EngageThreshold: 1200}
}

// Fig8Row is one x-position of Fig. 8: for one known vulnerability, the
// suspicious-call counts of the malicious app and of the top-scoring
// benign app.
type Fig8Row struct {
	Index          int
	Interface      string
	MaliciousScore int64
	TopBenignScore int64
	Detected       bool
	Killed         bool
}

// Fig8SingleAttacker reproduces Fig. 8: for every known vulnerability,
// run a benign population plus one malicious app attacking it, engage the
// defender (Δ = 1.8 ms, §V-C), and compare suspicious-call counts.
// Quick scale samples every 6th vulnerability with a 20-app population.
// Each vulnerability runs on its own device (seed 50+idx), so the rows
// are identical for any worker count (0 = one per CPU, 1 = sequential).
func Fig8SingleAttacker(ctx context.Context, scale Scale, workers int) ([]Fig8Row, error) {
	rows := catalog.ExploitableInterfaces()
	stride, population := 6, 20
	if scale == Full {
		stride, population = 1, 100
	}
	var picks []int
	for i := 0; i < len(rows); i += stride {
		picks = append(picks, i)
	}
	return parallel.Map(ctx, picks, workers, func(_ context.Context, _ int, i int) (Fig8Row, error) {
		row, err := fig8Once(scale, i, rows[i], population)
		if err != nil {
			return Fig8Row{}, fmt.Errorf("experiments: fig8 %s: %w", rows[i].FullName(), err)
		}
		return row, nil
	})
}

func fig8Once(scale Scale, idx int, iface catalog.Interface, population int) (Fig8Row, error) {
	dev, err := device.Boot(device.Config{Seed: int64(50 + idx)})
	if err != nil {
		return Fig8Row{}, err
	}
	def, err := defense.New(dev, defenseThresholds(scale))
	if err != nil {
		return Fig8Row{}, err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, population, int64(idx), 2*time.Second); err != nil {
		return Fig8Row{}, err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return Fig8Row{}, err
	}
	atk, err := workload.NewAttacker(dev, evil, iface.FullName())
	if err != nil {
		return Fig8Row{}, err
	}
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)

	hist := def.History()
	if len(hist) == 0 {
		return Fig8Row{}, errors.New("defender never engaged")
	}
	det := hist[0]
	res := Fig8Row{Index: idx + 1, Interface: iface.FullName(), Detected: det.Recovered}
	for _, s := range det.Scores {
		if s.Package == "com.evil.app" {
			res.MaliciousScore = s.Score
		} else if s.Score > res.TopBenignScore {
			res.TopBenignScore = s.Score
		}
	}
	for _, k := range det.Killed {
		if k == "com.evil.app" {
			res.Killed = true
		}
	}
	return res, nil
}

// Fig9Result holds the Δ-sensitivity sweep for the colluding attack.
type Fig9Result struct {
	// Deltas are the swept Δ values (the paper uses 79 µs, 1,900 µs and
	// 3,583 µs).
	Deltas []time.Duration
	// Top[i] lists the top five apps (by suspicious-call count) for
	// Deltas[i].
	Top [][]defense.AppScore
	// Colluders are the malicious packages, for checking the ranking.
	Colluders []string
	Bystander string
	Recovered bool
}

// PaperDeltas are the Δ values of Fig. 9.
var PaperDeltas = []time.Duration{79 * time.Microsecond, 1900 * time.Microsecond, 3583 * time.Microsecond}

// Fig9Colluders reproduces Fig. 9: four colluding apps attack four
// different vulnerable interfaces while a chatty-but-benign app fires IPC
// calls with 0–100 ms gaps; Algorithm 1 is re-run with each Δ and must
// rank the four colluders above the bystander every time. The attack run
// itself is one shared-device simulation, but the per-Δ rescoring fans
// out across workers: Algorithm 1 only reads the frozen detection window,
// so every Δ scores the same records and the result is identical for any
// worker count.
func Fig9Colluders(ctx context.Context, scale Scale, workers int) (*Fig9Result, error) {
	dev, err := device.Boot(device.Config{Seed: 99})
	if err != nil {
		return nil, err
	}
	cfg := defenseThresholds(scale)
	cfg.KeepRaw = true
	def, err := defense.New(dev, cfg)
	if err != nil {
		return nil, err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 10, 9, 2*time.Second); err != nil {
		return nil, err
	}
	res := &Fig9Result{Deltas: PaperDeltas, Bystander: "com.chatty.app"}
	// Four fast vulnerable interfaces from distinct services: colluders
	// that pick slow interfaces would not accumulate enough calls inside
	// the detection window to matter.
	targets := fastTargets(4)
	for i, tgt := range targets {
		app, err := dev.Apps().Install(fmt.Sprintf("com.collude.app%d", i))
		if err != nil {
			return nil, err
		}
		res.Colluders = append(res.Colluders, app.Package())
		atk, err := workload.NewAttacker(dev, app, tgt)
		if err != nil {
			return nil, err
		}
		sched.Add(atk)
	}
	chattyApp, err := dev.Apps().Install(res.Bystander)
	if err != nil {
		return nil, err
	}
	chatty, err := workload.NewChattyApp(dev, chattyApp, 17)
	if err != nil {
		return nil, err
	}
	sched.Add(chatty)

	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)
	hist := def.History()
	if len(hist) == 0 {
		return nil, errors.New("defender never engaged")
	}
	det := hist[0]
	res.Recovered = det.Recovered
	top, err := parallel.Map(ctx, res.Deltas, workers, func(_ context.Context, _ int, delta time.Duration) ([]defense.AppScore, error) {
		scores := def.ScoreWithDelta(det.RawRecords, det.RawAddTimes, delta)
		if len(scores) > 5 {
			scores = scores[:5]
		}
		return scores, nil
	})
	if err != nil {
		return nil, err
	}
	res.Top = top
	return res, nil
}

// fastTargets picks the n fastest exploitable interfaces from distinct
// services.
func fastTargets(n int) []string {
	rows := catalog.ExploitableInterfaces()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cost.AttackSeconds < rows[j].Cost.AttackSeconds })
	var out []string
	seen := make(map[string]bool)
	for _, r := range rows {
		if seen[r.Service] {
			continue
		}
		seen[r.Service] = true
		out = append(out, r.FullName())
		if len(out) == n {
			break
		}
	}
	return out
}

// DelayRow is one §V-D1 response-delay measurement.
type DelayRow struct {
	Interface    string
	AnalysisTime time.Duration
	Records      int
	Defended     bool
}

// ResponseDelays measures, for every known vulnerability (54 system + 3
// prebuilt-app interfaces), the defender's source-identification delay.
// Quick scale samples every 6th system interface but always includes the
// paper's named outlier, midi.registerDeviceServer. Every measurement
// boots its own device (seeds 70+idx / 80+idx), so the rows are identical
// for any worker count (0 = one per CPU, 1 = sequential).
func ResponseDelays(ctx context.Context, scale Scale, workers int) ([]DelayRow, error) {
	rows := catalog.ExploitableInterfaces()
	stride := 6
	if scale == Full {
		stride = 1
	}
	var picks []catalog.Interface
	seen := make(map[string]bool)
	for i := 0; i < len(rows); i += stride {
		picks = append(picks, rows[i])
		seen[rows[i].FullName()] = true
	}
	if !seen["midi.registerDeviceServer"] {
		if row, ok := catalog.InterfaceByName("midi.registerDeviceServer"); ok {
			picks = append(picks, row)
		}
	}
	// One shard per measurement: the system-service picks followed by the
	// prebuilt-app victims, in canonical order.
	type delayShard struct {
		idx   int
		iface catalog.Interface    // system-service victim when app == nil
		app   *catalog.AppInterface // prebuilt-app victim
	}
	var shards []delayShard
	for i, iface := range picks {
		shards = append(shards, delayShard{idx: i, iface: iface})
	}
	for i, row := range catalog.PrebuiltAppInterfaces() {
		r := row
		shards = append(shards, delayShard{idx: i, app: &r})
	}
	return parallel.Map(ctx, shards, workers, func(_ context.Context, _ int, s delayShard) (DelayRow, error) {
		if s.app != nil {
			dr, err := appDelayOnce(scale, s.idx, *s.app)
			if err != nil {
				return DelayRow{}, fmt.Errorf("experiments: delay %s: %w", s.app.FullName(), err)
			}
			return dr, nil
		}
		dr, err := delayOnce(scale, s.idx, s.iface)
		if err != nil {
			return DelayRow{}, fmt.Errorf("experiments: delay %s: %w", s.iface.FullName(), err)
		}
		return dr, nil
	})
}

func delayOnce(scale Scale, idx int, iface catalog.Interface) (DelayRow, error) {
	dev, err := device.Boot(device.Config{Seed: int64(70 + idx)})
	if err != nil {
		return DelayRow{}, err
	}
	def, err := defense.New(dev, defenseThresholds(scale))
	if err != nil {
		return DelayRow{}, err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 15, int64(idx), 2*time.Second); err != nil {
		return DelayRow{}, err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return DelayRow{}, err
	}
	atk, err := workload.NewAttacker(dev, evil, iface.FullName())
	if err != nil {
		return DelayRow{}, err
	}
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)
	hist := def.History()
	if len(hist) == 0 {
		return DelayRow{}, errors.New("defender never engaged")
	}
	det := hist[0]
	return DelayRow{
		Interface:    iface.FullName(),
		AnalysisTime: det.AnalysisTime,
		Records:      det.Records,
		Defended:     det.Recovered && dev.SoftReboots() == 0,
	}, nil
}

func appDelayOnce(scale Scale, idx int, row catalog.AppInterface) (DelayRow, error) {
	dev, err := device.Boot(device.Config{Seed: int64(80 + idx)})
	if err != nil {
		return DelayRow{}, err
	}
	def, err := defense.New(dev, defenseThresholds(scale))
	if err != nil {
		return DelayRow{}, err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return DelayRow{}, err
	}
	atk, err := workload.NewAppAttacker(dev, evil, row)
	if err != nil {
		return DelayRow{}, err
	}
	sched := workload.NewScheduler(dev)
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)
	hist := def.History()
	if len(hist) == 0 {
		return DelayRow{}, errors.New("defender never engaged")
	}
	det := hist[0]
	return DelayRow{
		Interface:    row.FullName(),
		AnalysisTime: det.AnalysisTime,
		Records:      det.Records,
		Defended:     det.Recovered,
	}, nil
}

// Fig10Row is one payload point of the IPC-overhead sweep.
type Fig10Row struct {
	PayloadKB   int
	Stock       time.Duration
	WithDefense time.Duration
}

// Fig10Result summarizes the overhead sweep.
type Fig10Result struct {
	Rows []Fig10Row
	// MaxAdded is the largest absolute per-call cost the defense adds
	// (the paper measures at most 1.247 ms).
	MaxAdded time.Duration
	// OverheadPercent is the aggregate relative increase (paper: ≈46.7%).
	OverheadPercent float64
}

// Fig10IPCOverhead reproduces Fig. 10: deliver byte arrays of growing
// size through a service, with and without the defense's IPC recording,
// and measure per-call latency. Full scale walks 500 rounds of +1,024 B.
func Fig10IPCOverhead(scale Scale) (*Fig10Result, error) {
	rounds, stepKB := 100, 5
	if scale == Full {
		rounds, stepKB = 500, 1
	}
	dev, err := device.Boot(device.Config{Seed: 61})
	if err != nil {
		return nil, err
	}
	app, err := dev.Apps().Install("com.bench.app")
	if err != nil {
		return nil, err
	}
	code, ok := services.CodeFor("audio", "getState")
	if !ok {
		return nil, errors.New("audio.getState missing")
	}
	svcRef, err := dev.ServiceManager().GetService("audio", app.Start())
	if err != nil {
		return nil, err
	}
	// Average several calls per point: the service handler draws random
	// jitter per call, and a single sample would drown the logging cost
	// at small payloads.
	const callsPerPoint = 8
	measure := func(kb int) (time.Duration, error) {
		var total time.Duration
		payload := make([]byte, kb*1024)
		for c := 0; c < callsPerPoint; c++ {
			data, reply := binder.NewParcel(), binder.NewParcel()
			data.WriteString("com.bench.app")
			data.WriteBytes(payload)
			t0 := dev.Clock().Now()
			if err := svcRef.Binder().Transact(code, data, reply); err != nil {
				return 0, err
			}
			total += dev.Clock().Now() - t0
		}
		return total / callsPerPoint, nil
	}

	res := &Fig10Result{}
	var stockSum, defSum time.Duration
	for i := 0; i < rounds; i++ {
		kb := i * stepKB
		dev.Driver().DisableIPCLogging()
		stock, err := measure(kb)
		if err != nil {
			return nil, err
		}
		if err := dev.Driver().EnableIPCLogging(); err != nil {
			return nil, err
		}
		withDef, err := measure(kb)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig10Row{PayloadKB: kb, Stock: stock, WithDefense: withDef})
		if added := withDef - stock; added > res.MaxAdded {
			res.MaxAdded = added
		}
		stockSum += stock
		defSum += withDef
	}
	dev.Driver().DisableIPCLogging()
	if stockSum > 0 {
		res.OverheadPercent = 100 * float64(defSum-stockSum) / float64(stockSum)
	}
	return res, nil
}

// BypassRow reports one protected interface's behaviour under the two
// access paths (Tables II and III, §IV-B/§IV-C).
type BypassRow struct {
	Interface  string
	Protection catalog.Protection
	// HelperBounded: going through the helper class stayed at the quota.
	HelperBounded bool
	// DirectUnbounded: the raw-binder path grew past the quota.
	DirectUnbounded bool
	// SpoofUsed marks the enqueueToast "android" trick.
	SpoofUsed bool
}

// ProtectedBypass demonstrates §IV-C: every helper-guarded interface is
// bounded through its helper but unbounded through the raw binder; the
// per-process-guarded ones hold except enqueueToast under the package
// spoof. Each protected interface is probed on its own freshly booted
// device (seed 71), so the rows are identical for any worker count
// (0 = one per CPU, 1 = sequential).
func ProtectedBypass(ctx context.Context, workers int) ([]BypassRow, error) {
	type probe struct {
		idx int
		row catalog.Interface
	}
	var probes []probe
	for i, row := range catalog.Interfaces() {
		if row.Protection != catalog.Unprotected {
			probes = append(probes, probe{idx: i, row: row})
		}
	}
	return parallel.Map(ctx, probes, workers, func(_ context.Context, _ int, p probe) (BypassRow, error) {
		br, err := bypassOnce(p.idx, p.row)
		if err != nil {
			return BypassRow{}, fmt.Errorf("experiments: bypass %s: %w", p.row.FullName(), err)
		}
		return br, nil
	})
}

func bypassOnce(idx int, row catalog.Interface) (BypassRow, error) {
	dev, err := device.Boot(device.Config{Seed: 71})
	if err != nil {
		return BypassRow{}, err
	}
	app, err := dev.Apps().Install(fmt.Sprintf("com.bypass.app%02d", idx))
	if err != nil {
		return BypassRow{}, err
	}
	if row.Permission != "" {
		if err := dev.Permissions().Grant(app.Uid(), row.Permission); err != nil {
			return BypassRow{}, err
		}
	}
	client, err := dev.NewClient(app, row.Service)
	if err != nil {
		return BypassRow{}, err
	}
	br := BypassRow{Interface: row.FullName(), Protection: row.Protection}
	svc := dev.Service(row.Service)
	probe := 3 * row.GuardLimit

	switch row.Protection {
	case catalog.HelperGuard:
		helper := services.NewHelper(client, row)
		for j := 0; j < probe; j++ {
			if err := helper.Acquire(); err != nil {
				break
			}
		}
		br.HelperBounded = svc.EntryCount(row.Method) <= row.GuardLimit
		for j := 0; j < probe; j++ {
			if err := client.Register(row.Method); err != nil {
				return BypassRow{}, err
			}
		}
		br.DirectUnbounded = svc.EntryCount(row.Method) > row.GuardLimit
	case catalog.PerProcessGuard:
		pkg := app.Package()
		if row.Bypassable {
			pkg = "android"
			br.SpoofUsed = true
		}
		for j := 0; j < probe; j++ {
			if err := client.RegisterAs(row.Method, pkg, client.NewToken()); err != nil {
				if strings.Contains(err.Error(), "quota") {
					break
				}
				return BypassRow{}, err
			}
		}
		br.DirectUnbounded = svc.EntryCount(row.Method) > row.GuardLimit
		br.HelperBounded = !br.DirectUnbounded
	}
	app.ForceStop("bypass probe done")
	return br, nil
}
