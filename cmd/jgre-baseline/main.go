// Command jgre-baseline reproduces Fig. 4 and Observation 1: cycle the
// Google-Play top-app population through foreground sessions and sample
// system_server's JGR table size and the running-process count. It is a
// thin dispatcher over the scenario registry (scenario fig4).
//
// Usage:
//
//	jgre-baseline [-scale quick|full] [-json]
//
// -json emits the shared scenario result envelope instead of the
// rendered report.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-baseline: ")

	scaleName := flag.String("scale", "quick", "quick (1 round × 30 apps) or full (3 rounds × 100 apps)")
	asJSON := flag.Bool("json", false, "emit the shared scenario result envelope as JSON")
	flag.Parse()

	scale, err := scenario.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	env, err := scenario.Execute(context.Background(), "fig4", scenario.Params{Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		out, err := env.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}
	res, ok := env.Result.(*experiments.Fig4Result)
	if !ok {
		log.Fatalf("scenario fig4 returned unexpected %T", env.Result)
	}
	fmt.Println("Fig. 4: system_server JGR table size and running processes under the benign top-app workload")
	fmt.Println("# t_seconds\tjgr_size\tprocesses")
	for i, p := range res.JGR.Points {
		fmt.Printf("%.0f\t%.0f\t%.0f\n", p.T.Seconds(), p.V, res.Processes.Points[i].V)
	}
	fmt.Println()
	fmt.Print(metrics.ASCIIChart("system_server JGR table size over the benign workload", 64, 12, &res.JGR))
	fmt.Printf("\nJGR band: [%.0f, %.0f] (paper: 1,000–3,000)\n", res.JGR.Min(), res.JGR.Max())
	fmt.Printf("process band: [%.0f, %.0f] (paper: 382–421)\n", res.Processes.Min(), res.Processes.Max())
	fmt.Printf("peak concurrent user apps: %d (paper: ≈39); LMK kills: %d\n", res.MaxConcurrentApps, res.LMKKills)
}
