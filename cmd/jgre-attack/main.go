// Command jgre-attack reproduces the attack-dynamics figures: Fig. 3
// (JGR growth of the victim under attack, per interface), Fig. 5 (the
// execution-time growth of telephony.registry.listenForSubscriber) and
// Fig. 6 (per-interface execution-time CDFs), plus the Table II/III
// bypass demonstrations and the Observation 2 delay measurement. It is a
// thin dispatcher over the scenario registry (scenarios fig3, fig5,
// fig6, bypass, obs2 — see jgre-run list).
//
// Usage:
//
//	jgre-attack -fig 3 [-iface service.method] [-scale quick|full] [-parallel n] [-json]
//	jgre-attack -fig 5 [-scale quick|full] [-json]
//	jgre-attack -fig 6 [-scale quick|full] [-parallel n] [-json]
//	jgre-attack -bypass [-parallel n] [-json]
//	jgre-attack -obs2 [-scale quick|full] [-json]
//
// The Fig. 3, Fig. 6 and bypass sweeps fan out across -parallel workers
// (default: one per CPU); every interface runs on its own simulated
// device, so the output is identical for any worker count. -json emits
// the shared scenario result envelope instead of the rendered report.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-attack: ")

	fig := flag.Int("fig", 3, "figure to reproduce (3, 5 or 6)")
	iface := flag.String("iface", "", "restrict Fig. 3 to one interface (service.method)")
	scaleName := flag.String("scale", "quick", "quick (reduced JGR cap / fewer calls) or full (paper parameters)")
	bypass := flag.Bool("bypass", false, "run the Table II/III protection-bypass demonstrations instead")
	obs2 := flag.Bool("obs2", false, "measure Observation 2 (per-interface IPC→JGR Delay + Δ) instead")
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = sequential; results are identical)")
	asJSON := flag.Bool("json", false, "emit the shared scenario result envelope as JSON")
	flag.Parse()

	scale, err := scenario.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	p := scenario.Params{Scale: scale, Workers: *workers}

	name := ""
	switch {
	case *bypass:
		name = "bypass"
	case *obs2:
		name = "obs2"
	case *fig == 3:
		name = "fig3"
		if *iface != "" {
			p.Filter = []string{*iface}
		}
	case *fig == 5:
		name = "fig5"
	case *fig == 6:
		name = "fig6"
	default:
		log.Printf("unknown figure %d (want 3, 5 or 6)", *fig)
		os.Exit(2)
	}

	env, err := scenario.Execute(context.Background(), name, p)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		out, err := env.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}
	switch res := env.Result.(type) {
	case []experiments.AttackCurve:
		renderFig3(res)
	case *experiments.Fig5Result:
		renderFig5(res)
	case *experiments.Fig6Result:
		renderFig6(res)
	case *experiments.Obs2Result:
		renderObs2(res)
	case []experiments.BypassRow:
		renderBypass(res)
	default:
		log.Fatalf("scenario %s returned unexpected %T", name, env.Result)
	}
}

func renderFig3(curves []experiments.AttackCurve) {
	sort.Slice(curves, func(i, j int) bool { return curves[i].Duration < curves[j].Duration })
	fmt.Println("Fig. 3: JGR exhaustion time per vulnerable interface (victim table growth to the cap)")
	fmt.Printf("%-55s %12s %10s\n", "INTERFACE", "DURATION", "CALLS")
	aborted := 0
	for _, c := range curves {
		note := ""
		if c.Err != "" {
			note = "  ABORTED: " + c.Err
			aborted++
		}
		fmt.Printf("%-55s %12.1fs %10d%s\n", c.Interface, c.Duration.Seconds(), c.Calls, note)
	}
	if aborted > 0 {
		fmt.Printf("\nWARNING: %d of %d attacks aborted on an IPC error before exhaustion\n", aborted, len(curves))
	}
	if len(curves) > 1 {
		fmt.Printf("\nfastest %-45s %8.1fs\n", curves[0].Interface, curves[0].Duration.Seconds())
		last := curves[len(curves)-1]
		fmt.Printf("slowest %-45s %8.1fs\n", last.Interface, last.Duration.Seconds())
	}
	if len(curves) == 1 {
		fmt.Println()
		fmt.Print(metrics.ASCIIChart("victim JGR table vs. attack time", 64, 16, &curves[0].Series))
		fmt.Println("\n# t_seconds\tjgr_count")
		fmt.Print(curves[0].Series.TSV())
	}
}

func renderFig5(res *experiments.Fig5Result) {
	fmt.Printf("Fig. 5: execution time of telephony.registry.listenForSubscriber over %d calls\n", res.Calls)
	fmt.Println("# call_index\texec_us")
	step := res.Calls / 100
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.ExecTimes); i += step {
		fmt.Printf("%d\t%d\n", i, res.ExecTimes[i].Microseconds())
	}
	fmt.Printf("first call %v, last call %v\n", res.ExecTimes[0], res.ExecTimes[len(res.ExecTimes)-1])
}

func renderFig6(res *experiments.Fig6Result) {
	fmt.Printf("Fig. 6: execution-time distributions over %d calls per vulnerable interface\n", res.CallsPer)
	fmt.Printf("%-55s %8s %8s %8s %8s\n", "INTERFACE", "MIN_us", "P50_us", "P90_us", "MAX_us")
	names := make([]string, 0, len(res.PerInterface))
	for n := range res.PerInterface {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := res.PerInterface[n]
		fmt.Printf("%-55s %8.0f %8.0f %8.0f %8.0f\n", n, s.Min, s.P50, s.P90, s.Max)
	}
}

func renderObs2(res *experiments.Obs2Result) {
	rows := append([]experiments.Obs2Row(nil), res.Rows...)
	fmt.Println("Observation 2: per-interface IPC→JGR delay = Delay + Δ (paper §V)")
	fmt.Printf("%-55s %10s %10s %10s\n", "INTERFACE", "DELAY_us", "DELTA_us", "P90_us")
	sort.Slice(rows, func(i, j int) bool { return rows[i].Interface < rows[j].Interface })
	for _, r := range rows {
		fmt.Printf("%-55s %10d %10d %10d\n", r.Interface,
			r.Delay.Microseconds(), r.Delta.Microseconds(), r.P90.Microseconds())
	}
	fmt.Printf("\nfleet-wide mean Δ = %v (the paper derives 1.8 ms and uses it as the default)\n",
		res.MeanDelta.Round(time.Microsecond))
}

func renderBypass(rows []experiments.BypassRow) {
	fmt.Println("Protection bypass study (§IV-B/IV-C): helper guards vs. direct binder access")
	fmt.Printf("%-50s %-18s %-15s %s\n", "INTERFACE", "PROTECTION", "HELPER BOUNDED", "DIRECT PATH")
	still := 0
	for _, r := range rows {
		direct := "bounded"
		if r.DirectUnbounded {
			direct = "EXPLOITABLE"
			if r.SpoofUsed {
				direct = `EXPLOITABLE (pkg="android" spoof)`
			}
			still++
		}
		fmt.Printf("%-50s %-18s %-15v %s\n", r.Interface, r.Protection, r.HelperBounded, direct)
	}
	fmt.Printf("\n%d of %d protected interfaces remain exploitable\n", still, len(rows))
}
