// Command jgre-attack reproduces the attack-dynamics figures: Fig. 3
// (JGR growth of the victim under attack, per interface), Fig. 5 (the
// execution-time growth of telephony.registry.listenForSubscriber) and
// Fig. 6 (per-interface execution-time CDFs), plus the Table II/III
// bypass demonstrations.
//
// Usage:
//
//	jgre-attack -fig 3 [-iface service.method] [-scale quick|full] [-parallel n]
//	jgre-attack -fig 5 [-scale quick|full]
//	jgre-attack -fig 6 [-scale quick|full] [-parallel n]
//	jgre-attack -bypass
//
// The Fig. 3 and Fig. 6 sweeps fan out across -parallel workers (default:
// one per CPU); every interface runs on its own simulated device, so the
// output is identical for any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-attack: ")

	fig := flag.Int("fig", 3, "figure to reproduce (3, 5 or 6)")
	iface := flag.String("iface", "", "restrict Fig. 3 to one interface (service.method)")
	scaleName := flag.String("scale", "quick", "quick (reduced JGR cap / fewer calls) or full (paper parameters)")
	bypass := flag.Bool("bypass", false, "run the Table II/III protection-bypass demonstrations instead")
	obs2 := flag.Bool("obs2", false, "measure Observation 2 (per-interface IPC→JGR Delay + Δ) instead")
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = sequential; results are identical)")
	flag.Parse()

	scale := experiments.Quick
	if *scaleName == "full" {
		scale = experiments.Full
	}

	if *bypass {
		runBypass()
		return
	}
	if *obs2 {
		runObs2(scale)
		return
	}
	switch *fig {
	case 3:
		runFig3(scale, *iface, *workers)
	case 5:
		runFig5(scale)
	case 6:
		runFig6(scale, *workers)
	default:
		log.Printf("unknown figure %d (want 3, 5 or 6)", *fig)
		os.Exit(2)
	}
}

func runFig3(scale experiments.Scale, iface string, workers int) {
	var only []string
	if iface != "" {
		only = []string{iface}
	}
	curves, err := experiments.Fig3AttackCurvesContext(context.Background(), scale, only, workers)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(curves, func(i, j int) bool { return curves[i].Duration < curves[j].Duration })
	fmt.Println("Fig. 3: JGR exhaustion time per vulnerable interface (victim table growth to the cap)")
	fmt.Printf("%-55s %12s %10s\n", "INTERFACE", "DURATION", "CALLS")
	aborted := 0
	for _, c := range curves {
		note := ""
		if c.Err != "" {
			note = "  ABORTED: " + c.Err
			aborted++
		}
		fmt.Printf("%-55s %12.1fs %10d%s\n", c.Interface, c.Duration.Seconds(), c.Calls, note)
	}
	if aborted > 0 {
		fmt.Printf("\nWARNING: %d of %d attacks aborted on an IPC error before exhaustion\n", aborted, len(curves))
	}
	if len(curves) > 1 {
		fmt.Printf("\nfastest %-45s %8.1fs\n", curves[0].Interface, curves[0].Duration.Seconds())
		last := curves[len(curves)-1]
		fmt.Printf("slowest %-45s %8.1fs\n", last.Interface, last.Duration.Seconds())
	}
	if len(curves) == 1 {
		fmt.Println()
		fmt.Print(metrics.ASCIIChart("victim JGR table vs. attack time", 64, 16, &curves[0].Series))
		fmt.Println("\n# t_seconds\tjgr_count")
		fmt.Print(curves[0].Series.TSV())
	}
}

func runFig5(scale experiments.Scale) {
	res, err := experiments.Fig5ExecutionGrowth(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 5: execution time of telephony.registry.listenForSubscriber over %d calls\n", res.Calls)
	fmt.Println("# call_index\texec_us")
	step := res.Calls / 100
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.ExecTimes); i += step {
		fmt.Printf("%d\t%d\n", i, res.ExecTimes[i].Microseconds())
	}
	fmt.Printf("first call %v, last call %v\n", res.ExecTimes[0], res.ExecTimes[len(res.ExecTimes)-1])
}

func runFig6(scale experiments.Scale, workers int) {
	res, err := experiments.Fig6LatencyCDFContext(context.Background(), scale, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 6: execution-time distributions over %d calls per vulnerable interface\n", res.CallsPer)
	fmt.Printf("%-55s %8s %8s %8s %8s\n", "INTERFACE", "MIN_us", "P50_us", "P90_us", "MAX_us")
	names := make([]string, 0, len(res.PerInterface))
	for n := range res.PerInterface {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := res.PerInterface[n]
		fmt.Printf("%-55s %8.0f %8.0f %8.0f %8.0f\n", n, s.Min, s.P50, s.P90, s.Max)
	}
}

func runObs2(scale experiments.Scale) {
	rows, meanDelta, err := experiments.Observation2(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Observation 2: per-interface IPC→JGR delay = Delay + Δ (paper §V)")
	fmt.Printf("%-55s %10s %10s %10s\n", "INTERFACE", "DELAY_us", "DELTA_us", "P90_us")
	sort.Slice(rows, func(i, j int) bool { return rows[i].Interface < rows[j].Interface })
	for _, r := range rows {
		fmt.Printf("%-55s %10d %10d %10d\n", r.Interface,
			r.Delay.Microseconds(), r.Delta.Microseconds(), r.P90.Microseconds())
	}
	fmt.Printf("\nfleet-wide mean Δ = %v (the paper derives 1.8 ms and uses it as the default)\n", meanDelta.Round(time.Microsecond))
}

func runBypass() {
	rows, err := experiments.ProtectedBypass()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Protection bypass study (§IV-B/IV-C): helper guards vs. direct binder access")
	fmt.Printf("%-50s %-18s %-15s %s\n", "INTERFACE", "PROTECTION", "HELPER BOUNDED", "DIRECT PATH")
	still := 0
	for _, r := range rows {
		direct := "bounded"
		if r.DirectUnbounded {
			direct = "EXPLOITABLE"
			if r.SpoofUsed {
				direct = `EXPLOITABLE (pkg="android" spoof)`
			}
			still++
		}
		fmt.Printf("%-50s %-18s %-15v %s\n", r.Interface, r.Protection, r.HelperBounded, direct)
	}
	fmt.Printf("\n%d of %d protected interfaces remain exploitable\n", still, len(rows))
}
