// Command jgre-run is the unified front end over the scenario registry:
// one binary that can enumerate and execute every registered experiment
// — each table, figure and study of the evaluation — and emit the shared
// JSON result envelope.
//
// Usage:
//
//	jgre-run list
//	jgre-run <scenario> [-scale quick|full] [-parallel n] [-seed n]
//	         [-filter a,b] [-json] [-metrics-json]
//
// Parallelizable scenarios (marked in jgre-run list) fan out across
// -parallel workers; every shard runs on its own simulated device, so
// the output is identical for any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"repro/internal/device"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-run: ")

	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "list" || name == "-list" || name == "--list" {
		list()
		return
	}

	fs := flag.NewFlagSet("jgre-run "+name, flag.ExitOnError)
	scaleName := fs.String("scale", "quick", "quick or full")
	workers := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = sequential; results are identical)")
	seed := fs.Int64("seed", 0, "seed label recorded in the envelope")
	filter := fs.String("filter", "", "comma-separated sweep targets (scenario-specific; empty = all)")
	asJSON := fs.Bool("json", false, "emit the shared result envelope as JSON")
	metricsJSON := fs.Bool("metrics-json", false, "attach a telemetry snapshot (worker/pool counters) to the JSON envelope")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON file of every device's causal spans (forces flight recorders on)")
	traceSample := fs.Uint64("trace-sample", 1, "with -trace-out: trace one in every n transactions")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	s, ok := scenario.Lookup(name)
	if !ok {
		log.Printf("unknown scenario %q", name)
		if hint := scenario.Suggest(name); hint != "" {
			fmt.Fprintf(os.Stderr, "did you mean %q?\n", hint)
		}
		fmt.Fprintln(os.Stderr, "registered scenarios:")
		for _, reg := range scenario.List() {
			fmt.Fprintf(os.Stderr, "  %-20s %-10s %s\n", reg.Name, reg.Group, reg.Description)
		}
		os.Exit(2)
	}
	scale, err := scenario.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	p := scenario.Params{Scale: scale, Workers: *workers, Seed: *seed, Metrics: *metricsJSON}
	if *metricsJSON {
		// Start from a clean global registry so the snapshot covers only
		// this run, then force JSON output (the snapshot lives in the
		// envelope).
		telemetry.ResetGlobal()
		*asJSON = true
	}
	if *filter != "" {
		for _, f := range strings.Split(*filter, ",") {
			if f = strings.TrimSpace(f); f != "" {
				p.Filter = append(p.Filter, f)
			}
		}
	}

	if *traceOut != "" {
		// Capture mode: every device the scenario boots (or recycles) gets
		// a flight recorder; spans are harvested as slots retire and
		// drained after the run. Tracing never advances the virtual clock,
		// so the envelope is unchanged.
		device.StartTraceCapture(trace.Config{Sample: *traceSample}, 0)
	}

	env, err := s.Execute(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		spans, names, dropped := device.CollectCapturedTraces()
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.ExportChrome(f, spans, names); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "jgre-run: wrote %d spans to %s (%d dropped)\n", len(spans), *traceOut, dropped)
	}
	if *asJSON {
		out, err := env.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}
	fmt.Printf("scenario %s (group %s, scale %s, workers %d)\n", env.Scenario, env.Group, env.Scale, env.Workers)
	if text, ok := env.Result.(string); ok {
		fmt.Print(text)
	} else {
		// The envelope's JSON rendering doubles as the human view for
		// structured results; the per-figure cmd tools render prettier
		// reports.
		out, err := env.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
	}
	fmt.Printf("completed in %.0f ms\n", env.WallMS)
}

// list prints the registry grouped by scenario group (the registry's
// sort order is group-major, so one pass suffices).
func list() {
	fmt.Printf("  %-20s %-9s %s\n", "SCENARIO", "PARALLEL", "DESCRIPTION")
	group := ""
	for _, s := range scenario.List() {
		if s.Group != group {
			group = s.Group
			fmt.Printf("\n%s\n", strings.ToUpper(group))
		}
		par := "-"
		if s.Parallelizable {
			par = "yes"
		}
		fmt.Printf("  %-20s %-9s %s\n", s.Name, par, s.Description)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  jgre-run list
  jgre-run <scenario> [-scale quick|full] [-parallel n] [-seed n] [-filter a,b] [-json] [-metrics-json]
           [-trace-out file.json] [-trace-sample n]`)
}
