// Command jgre-defend reproduces the defense evaluation: Fig. 8 (single
// malicious app vs. top benign app, per vulnerability), Fig. 9 (the
// colluding-apps Δ sweep), Fig. 10 (IPC latency overhead of the defense),
// the §V-D1 response-delay study, the §VI multi-path and covert-channel
// studies, the alarm/engage threshold ablation and the §IV-B universal
// per-process-quota counterfactual. It is a thin dispatcher over the
// scenario registry (scenarios fig8, fig9, fig10, delays, multipath,
// thresholds, limitations, patch — see jgre-run list).
//
// Usage:
//
//	jgre-defend -fig 8|9|10 [-scale quick|full] [-parallel n] [-json]
//	jgre-defend -delays [-scale quick|full] [-parallel n] [-json]
//	jgre-defend -multipath [-scale quick|full] [-json]
//	jgre-defend -thresholds [-parallel n] [-json]
//	jgre-defend -limitations [-scale quick|full] [-json]
//	jgre-defend -patch [-parallel n] [-json]
//	jgre-defend -faults [-axis drop|jitter|ring] [-scale quick|full]
//	            [-parallel n] [-json]
//
// -faults runs the robustness degradation sweep (scenarios deg-drop,
// deg-jitter, deg-ring): seeded fault injection into the binder telemetry
// path, measuring defender accuracy, evidence coverage, response delay
// and innocent-kill discipline as one fault axis worsens.
//
// The Fig. 8, Fig. 9, -delays, -thresholds, -patch and -faults sweeps fan
// out across -parallel workers (default: one per CPU); every measurement
// runs on its own simulated device, so the output is identical for any
// worker count. -json emits the shared scenario result envelope instead
// of the rendered report.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-defend: ")

	fig := flag.Int("fig", 8, "figure to reproduce (8, 9 or 10)")
	delays := flag.Bool("delays", false, "measure §V-D1 response delays instead")
	multipath := flag.Bool("multipath", false, "run the §VI multi-path evasion study instead")
	thresholds := flag.Bool("thresholds", false, "run the alarm/engage threshold ablation instead")
	limitations := flag.Bool("limitations", false, "run the §VI covert-channel limitation study instead")
	patch := flag.Bool("patch", false, "run the §IV-B universal per-process-quota counterfactual instead")
	faultSweep := flag.Bool("faults", false, "run the telemetry fault-injection degradation sweep instead")
	axis := flag.String("axis", "drop", "degradation axis for -faults: drop, jitter or ring")
	scaleName := flag.String("scale", "quick", "quick or full")
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = sequential; results are identical)")
	asJSON := flag.Bool("json", false, "emit the shared scenario result envelope as JSON")
	flag.Parse()

	scale, err := scenario.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	p := scenario.Params{Scale: scale, Workers: *workers}

	name := ""
	switch {
	case *faultSweep:
		name = "deg-" + *axis
		if _, ok := scenario.Lookup(name); !ok {
			log.Printf("unknown degradation axis %q (want drop, jitter or ring)", *axis)
			os.Exit(2)
		}
	case *delays:
		name = "delays"
	case *multipath:
		name = "multipath"
	case *thresholds:
		name = "thresholds"
	case *limitations:
		name = "limitations"
	case *patch:
		name = "patch"
	case *fig == 8:
		name = "fig8"
	case *fig == 9:
		name = "fig9"
	case *fig == 10:
		name = "fig10"
	default:
		log.Printf("unknown figure %d (want 8, 9 or 10)", *fig)
		os.Exit(2)
	}

	env, err := scenario.Execute(context.Background(), name, p)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		out, err := env.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}
	switch res := env.Result.(type) {
	case []experiments.Fig8Row:
		renderFig8(res)
	case *experiments.Fig9Result:
		renderFig9(res)
	case *experiments.Fig10Result:
		renderFig10(res)
	case []experiments.DelayRow:
		renderDelays(res)
	case *experiments.MultiPathResult:
		renderMultiPath(res)
	case []experiments.ThresholdRow:
		renderThresholds(res)
	case *experiments.LimitationResult:
		renderLimitations(res)
	case []experiments.PatchRow:
		renderPatch(res)
	case *experiments.DegradationResult:
		renderDegradation(res)
	default:
		log.Fatalf("scenario %s returned unexpected %T", name, env.Result)
	}
}

func renderFig8(rows []experiments.Fig8Row) {
	fmt.Println("Fig. 8: suspicious IPC calls, malicious app vs. top benign app")
	fmt.Printf("%-5s %-55s %12s %12s %-8s\n", "IDX", "VULNERABILITY", "MALICIOUS", "TOP BENIGN", "STOPPED")
	for _, r := range rows {
		fmt.Printf("%-5d %-55s %12d %12d %-8v\n", r.Index, r.Interface, r.MaliciousScore, r.TopBenignScore, r.Killed)
	}
}

func renderFig9(res *experiments.Fig9Result) {
	fmt.Println("Fig. 9: suspicious IPC calls of the top apps under a 4-app colluding attack")
	fmt.Printf("colluders: %v; benign bystander: %s; recovered: %v\n", res.Colluders, res.Bystander, res.Recovered)
	for i, delta := range res.Deltas {
		fmt.Printf("\nΔ = %d µs:\n", delta.Microseconds())
		for rank, s := range res.Top[i] {
			tag := "malicious"
			if s.Package == res.Bystander {
				tag = "benign"
			} else if !isColluder(res.Colluders, s.Package) {
				tag = "benign"
			}
			fmt.Printf("  #%d uid %d %-22s %8d suspicious calls (%s)\n", rank+1, s.Uid, s.Package, s.Score, tag)
		}
	}
}

func isColluder(colluders []string, pkg string) bool {
	for _, c := range colluders {
		if c == pkg {
			return true
		}
	}
	return false
}

func renderFig10(res *experiments.Fig10Result) {
	fmt.Println("Fig. 10: IPC call latency vs. payload, stock vs. defense framework")
	fmt.Println("# payload_kb\tstock_us\twith_defense_us")
	for _, r := range res.Rows {
		fmt.Printf("%d\t%d\t%d\n", r.PayloadKB, r.Stock.Microseconds(), r.WithDefense.Microseconds())
	}
	fmt.Printf("max added per call: %v; aggregate overhead: %.1f%%\n", res.MaxAdded, res.OverheadPercent)
	var stock, defended metrics.Series
	stock.Name = "stock"
	defended.Name = "with defense"
	for _, r := range res.Rows {
		t := time.Duration(r.PayloadKB) * time.Second // x-axis: KB rendered as "s"
		stock.Add(t, float64(r.Stock.Microseconds()))
		defended.Add(t, float64(r.WithDefense.Microseconds()))
	}
	fmt.Println()
	fmt.Print(metrics.ASCIIChart("IPC latency (µs) vs. payload (KB on x-axis)", 64, 14, &stock, &defended))
}

func renderMultiPath(res *experiments.MultiPathResult) {
	fmt.Printf("§VI multi-path evasion study (%d execution paths per call)\n", res.Paths)
	fmt.Printf("wide pairing window:  classified=%d  unclassified=%d  top benign=%d\n",
		res.ClassifiedScore, res.UnclassifiedScore, res.TopBenignScore)
	fmt.Printf("tight pairing window: classified=%d  unclassified=%d\n",
		res.TightClassified, res.TightUnclassified)
	fmt.Printf("attacker killed: %v, victim recovered: %v\n", res.AttackerKilled, res.Recovered)
	fmt.Println("→ path smearing does not evade Algorithm 1; classification recovers full per-path attribution")
}

func renderThresholds(rows []experiments.ThresholdRow) {
	fmt.Println("defender threshold ablation (alarm / engage)")
	fmt.Printf("%-8s %-8s %14s %10s %12s %10s %s\n", "ALARM", "ENGAGE", "TIME-TO-ENGAGE", "PEAK JGR", "MARGIN", "RECORDS", "DEFENDED")
	for _, r := range rows {
		note := ""
		if r.Alarm == 4000 && r.Engage == 12000 {
			note = "  ← paper"
		}
		fmt.Printf("%-8d %-8d %13.1fs %10d %12d %10d %v%s\n",
			r.Alarm, r.Engage, r.TimeToEngage.Seconds(), r.PeakJGR, r.Margin(), r.Records, r.Defended, note)
	}
}

func renderLimitations(res *experiments.LimitationResult) {
	fmt.Println("§VI limitation study: JGRE through a non-Binder channel (broadcast/ASHMEM)")
	fmt.Printf("JGR monitor engaged: %v\n", res.Engaged)
	fmt.Printf("attacker attributed by Algorithm 1: %v (no binder records exist for the channel)\n", res.AttackerScored)
	fmt.Printf("attacker killed: %v; device rebooted: %v\n", res.AttackerKilled, res.Rebooted)
	fmt.Println("→ the defense depends on the binder-driver evidence stream; covert channels are out of reach (paper §VI)")
}

func renderPatch(rows []experiments.PatchRow) {
	fmt.Println("§IV-B counterfactual: patch EVERY interface with a per-process quota")
	fmt.Printf("%-8s %-14s %-18s %-18s %s\n", "QUOTA", "1-APP BLOCKED", "HEAVY-APP REFUSALS", "ALL REFUSALS", "COLLUDERS TO REBOOT")
	for _, r := range rows {
		colluders := fmt.Sprintf("%d", r.ColludersNeeded)
		if r.ColludersNeeded == 0 {
			colluders = ">80"
		}
		fmt.Printf("%-8d %-14v %-18d %-18d %s\n", r.Quota, r.SingleBlocked, r.HeavyAppRefusals, r.BenignRefusals, colluders)
	}
	fmt.Println("\n→ small quotas break legitimate heavy apps; large quotas fall to a handful of")
	fmt.Println("  colluders, because every service shares system_server's one JGR table (§IV-B)")
}

func renderDegradation(res *experiments.DegradationResult) {
	fmt.Printf("telemetry fault-injection degradation sweep, axis %q (innocent-kill bound %d)\n",
		res.Axis, res.InnocentKillBound)
	fmt.Printf("%-14s %8s %10s %10s %12s %10s %9s %7s\n",
		"POINT", "ACCURACY", "RETENTION", "COVERAGE", "RESPONSE", "FALLBACKS", "INNOCENT", "GUARDED")
	for _, p := range res.Points {
		fmt.Printf("%-14s %8.2f %10.3f %10.3f %10.1fms %6d/%-3d %9d %7d\n",
			p.Label, p.Accuracy, p.ScoreRetention, p.MeanCoverage,
			p.MeanResponseDelayMicros/1000, p.FallbackTrials, p.Trials,
			p.InnocentKills, p.GuardStops)
	}
	fmt.Println()
	switch res.Axis {
	case "drop":
		fmt.Println("→ accuracy and score retention degrade monotonically in the drop rate (nested")
		fmt.Println("  survivor sets by construction); below the coverage floor, retained-ref")
		fmt.Println("  fallback attribution keeps the attacker identified")
	case "jitter":
		fmt.Println("→ adaptive Δ widens with the observed jitter to keep the attacker ranked;")
		fmt.Println("  retention above 1 is the wider window crediting extra pairings (recall")
		fmt.Println("  over precision), bounded by MaxDelay")
	case "ring":
		fmt.Println("→ eviction truncates the window to its most recent suffix — exactly where")
		fmt.Println("  the attack is hottest — so identification survives deep truncation")
	}
	fmt.Println("  (no point may exceed the configured innocent-kill bound)")
}

func renderDelays(rows []experiments.DelayRow) {
	fmt.Println("§V-D1: response delays (attack-source identification)")
	fmt.Printf("%-55s %12s %10s %s\n", "VULNERABILITY", "DELAY", "RECORDS", "DEFENDED")
	over := 0
	var worst experiments.DelayRow
	for _, r := range rows {
		fmt.Printf("%-55s %12v %10d %v\n", r.Interface, r.AnalysisTime.Round(time.Millisecond), r.Records, r.Defended)
		if r.AnalysisTime > time.Second {
			over++
		}
		if r.AnalysisTime > worst.AnalysisTime {
			worst = r
		}
	}
	fmt.Printf("\n%d of %d delays exceed one second; worst: %s at %v\n",
		over, len(rows), worst.Interface, worst.AnalysisTime.Round(time.Millisecond))
}
