// Command jgre-defend reproduces the defense evaluation: Fig. 8 (single
// malicious app vs. top benign app, per vulnerability), Fig. 9 (the
// colluding-apps Δ sweep), Fig. 10 (IPC latency overhead of the defense),
// and the §V-D1 response-delay study.
//
// Usage:
//
//	jgre-defend -fig 8|9|10 [-scale quick|full] [-parallel n]
//	jgre-defend -delays [-scale quick|full] [-parallel n]
//
// The Fig. 8, -delays and -thresholds sweeps fan out across -parallel
// workers (default: one per CPU); every measurement runs on its own
// simulated device, so the output is identical for any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-defend: ")

	fig := flag.Int("fig", 8, "figure to reproduce (8, 9 or 10)")
	delays := flag.Bool("delays", false, "measure §V-D1 response delays instead")
	multipath := flag.Bool("multipath", false, "run the §VI multi-path evasion study instead")
	thresholds := flag.Bool("thresholds", false, "run the alarm/engage threshold ablation instead")
	limitations := flag.Bool("limitations", false, "run the §VI covert-channel limitation study instead")
	patch := flag.Bool("patch", false, "run the §IV-B universal per-process-quota counterfactual instead")
	scaleName := flag.String("scale", "quick", "quick or full")
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = sequential; results are identical)")
	flag.Parse()

	scale := experiments.Quick
	if *scaleName == "full" {
		scale = experiments.Full
	}

	if *delays {
		runDelays(scale, *workers)
		return
	}
	if *multipath {
		runMultiPath(scale)
		return
	}
	if *thresholds {
		runThresholds(*workers)
		return
	}
	if *limitations {
		runLimitations(scale)
		return
	}
	if *patch {
		runPatch()
		return
	}
	switch *fig {
	case 8:
		runFig8(scale, *workers)
	case 9:
		runFig9(scale)
	case 10:
		runFig10(scale)
	default:
		log.Printf("unknown figure %d (want 8, 9 or 10)", *fig)
		os.Exit(2)
	}
}

func runFig8(scale experiments.Scale, workers int) {
	rows, err := experiments.Fig8SingleAttackerContext(context.Background(), scale, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 8: suspicious IPC calls, malicious app vs. top benign app")
	fmt.Printf("%-5s %-55s %12s %12s %-8s\n", "IDX", "VULNERABILITY", "MALICIOUS", "TOP BENIGN", "STOPPED")
	for _, r := range rows {
		fmt.Printf("%-5d %-55s %12d %12d %-8v\n", r.Index, r.Interface, r.MaliciousScore, r.TopBenignScore, r.Killed)
	}
}

func runFig9(scale experiments.Scale) {
	res, err := experiments.Fig9Colluders(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 9: suspicious IPC calls of the top apps under a 4-app colluding attack")
	fmt.Printf("colluders: %v; benign bystander: %s; recovered: %v\n", res.Colluders, res.Bystander, res.Recovered)
	for i, delta := range res.Deltas {
		fmt.Printf("\nΔ = %d µs:\n", delta.Microseconds())
		for rank, s := range res.Top[i] {
			tag := "malicious"
			if s.Package == res.Bystander {
				tag = "benign"
			} else if !isColluder(res.Colluders, s.Package) {
				tag = "benign"
			}
			fmt.Printf("  #%d uid %d %-22s %8d suspicious calls (%s)\n", rank+1, s.Uid, s.Package, s.Score, tag)
		}
	}
}

func isColluder(colluders []string, pkg string) bool {
	for _, c := range colluders {
		if c == pkg {
			return true
		}
	}
	return false
}

func runFig10(scale experiments.Scale) {
	res, err := experiments.Fig10IPCOverhead(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 10: IPC call latency vs. payload, stock vs. defense framework")
	fmt.Println("# payload_kb\tstock_us\twith_defense_us")
	for _, r := range res.Rows {
		fmt.Printf("%d\t%d\t%d\n", r.PayloadKB, r.Stock.Microseconds(), r.WithDefense.Microseconds())
	}
	fmt.Printf("max added per call: %v; aggregate overhead: %.1f%%\n", res.MaxAdded, res.OverheadPercent)
	var stock, defended metrics.Series
	stock.Name = "stock"
	defended.Name = "with defense"
	for _, r := range res.Rows {
		t := time.Duration(r.PayloadKB) * time.Second // x-axis: KB rendered as "s"
		stock.Add(t, float64(r.Stock.Microseconds()))
		defended.Add(t, float64(r.WithDefense.Microseconds()))
	}
	fmt.Println()
	fmt.Print(metrics.ASCIIChart("IPC latency (µs) vs. payload (KB on x-axis)", 64, 14, &stock, &defended))
}

func runMultiPath(scale experiments.Scale) {
	res, err := experiments.MultiPathStudy(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§VI multi-path evasion study (%d execution paths per call)\n", res.Paths)
	fmt.Printf("wide pairing window:  classified=%d  unclassified=%d  top benign=%d\n",
		res.ClassifiedScore, res.UnclassifiedScore, res.TopBenignScore)
	fmt.Printf("tight pairing window: classified=%d  unclassified=%d\n",
		res.TightClassified, res.TightUnclassified)
	fmt.Printf("attacker killed: %v, victim recovered: %v\n", res.AttackerKilled, res.Recovered)
	fmt.Println("→ path smearing does not evade Algorithm 1; classification recovers full per-path attribution")
}

func runThresholds(workers int) {
	rows, err := experiments.ThresholdAblationContext(context.Background(), workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("defender threshold ablation (alarm / engage)")
	fmt.Printf("%-8s %-8s %14s %10s %12s %10s %s\n", "ALARM", "ENGAGE", "TIME-TO-ENGAGE", "PEAK JGR", "MARGIN", "RECORDS", "DEFENDED")
	for _, r := range rows {
		note := ""
		if r.Alarm == 4000 && r.Engage == 12000 {
			note = "  ← paper"
		}
		fmt.Printf("%-8d %-8d %13.1fs %10d %12d %10d %v%s\n",
			r.Alarm, r.Engage, r.TimeToEngage.Seconds(), r.PeakJGR, r.Margin(), r.Records, r.Defended, note)
	}
}

func runLimitations(scale experiments.Scale) {
	res, err := experiments.LimitationStudy(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§VI limitation study: JGRE through a non-Binder channel (broadcast/ASHMEM)")
	fmt.Printf("JGR monitor engaged: %v\n", res.Engaged)
	fmt.Printf("attacker attributed by Algorithm 1: %v (no binder records exist for the channel)\n", res.AttackerScored)
	fmt.Printf("attacker killed: %v; device rebooted: %v\n", res.AttackerKilled, res.Rebooted)
	fmt.Println("→ the defense depends on the binder-driver evidence stream; covert channels are out of reach (paper §VI)")
}

func runPatch() {
	rows, err := experiments.PatchStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§IV-B counterfactual: patch EVERY interface with a per-process quota")
	fmt.Printf("%-8s %-14s %-18s %-18s %s\n", "QUOTA", "1-APP BLOCKED", "HEAVY-APP REFUSALS", "ALL REFUSALS", "COLLUDERS TO REBOOT")
	for _, r := range rows {
		colluders := fmt.Sprintf("%d", r.ColludersNeeded)
		if r.ColludersNeeded == 0 {
			colluders = ">80"
		}
		fmt.Printf("%-8d %-14v %-18d %-18d %s\n", r.Quota, r.SingleBlocked, r.HeavyAppRefusals, r.BenignRefusals, colluders)
	}
	fmt.Println("\n→ small quotas break legitimate heavy apps; large quotas fall to a handful of")
	fmt.Println("  colluders, because every service shares system_server's one JGR table (§IV-B)")
}

func runDelays(scale experiments.Scale, workers int) {
	rows, err := experiments.ResponseDelaysContext(context.Background(), scale, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§V-D1: response delays (attack-source identification)")
	fmt.Printf("%-55s %12s %10s %s\n", "VULNERABILITY", "DELAY", "RECORDS", "DEFENDED")
	over := 0
	var worst experiments.DelayRow
	for _, r := range rows {
		fmt.Printf("%-55s %12v %10d %v\n", r.Interface, r.AnalysisTime.Round(time.Millisecond), r.Records, r.Defended)
		if r.AnalysisTime > time.Second {
			over++
		}
		if r.AnalysisTime > worst.AnalysisTime {
			worst = r
		}
	}
	fmt.Printf("\n%d of %d delays exceed one second; worst: %s at %v\n",
		over, len(rows), worst.Interface, worst.AnalysisTime.Round(time.Millisecond))
}
