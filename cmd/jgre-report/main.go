// Command jgre-report runs the full audit plus a defense demonstration
// and writes a Markdown security-assessment report — the artifact the
// paper's authors would have attached to their Android Security Team bug
// filings.
//
// Usage:
//
//	jgre-report [-o report.md] [-thirdparty n] [-calls n] [-ablations]
//	            [-trace] [-trace-fleet n]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-report: ")

	out := flag.String("o", "", "output file (default stdout)")
	thirdParty := flag.Int("thirdparty", 1000, "synthetic Google Play population size")
	calls := flag.Int("calls", 200, "invocations per candidate during verification")
	ablations := flag.Bool("ablations", false, "also run and include the threshold/quota ablation tables (slower)")
	traceOn := flag.Bool("trace", false, "run the demo device with the causal flight recorder on and include a traced-fleet forensic rollup")
	traceFleet := flag.Int("trace-fleet", 96, "with -trace: fleet width for the causal forensic rollup")
	flag.Parse()

	res, err := core.Audit(core.AuditConfig{
		ThirdPartyApps: *thirdParty,
		Dynamic:        true,
		VerifyCalls:    *calls,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A defense demonstration for the report: one detection. With -trace
	// the demo device carries a flight recorder, so the telemetry section
	// gains the recorder health rows.
	devCfg := device.Config{Seed: 2}
	if *traceOn {
		devCfg.Trace = trace.Config{Enabled: true}
	}
	pd, err := core.NewProtectedDevice(devCfg, defense.Config{})
	if err != nil {
		log.Fatal(err)
	}
	evil, err := pd.Device.Apps().Install("com.evil.app")
	if err != nil {
		log.Fatal(err)
	}
	atk, err := workload.NewAttacker(pd.Device, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		log.Fatal(err)
	}
	for evil.Running() {
		if err := atk.Step(); err != nil {
			break
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	stats := pd.Device.Stats()
	in := report.Input{
		Title:       "JGRE Vulnerability Assessment — simulated Android 6.0.1",
		Pipeline:    res,
		Detections:  pd.Defender.History(),
		Telemetry:   &stats,
		GeneratedAt: fmt.Sprintf("virtual t=%.1fs after audit-device boot", pd.Device.Clock().Now().Seconds()),
	}
	if *traceOn {
		// Traced fleet: the staged attack rollout with flight recorders
		// on, folded into the causal forensic rollup.
		res, err := fleet.Run(context.Background(), fleet.Config{
			Devices: *traceFleet,
			Seed:    1042,
			Device:  device.Config{Trace: trace.Config{Enabled: true}},
		}, fleet.AttackRollout(*traceFleet))
		if err != nil {
			log.Fatal(err)
		}
		in.FleetForensics = res
	}
	if *ablations {
		thr, err := scenario.Execute(context.Background(), "thresholds", scenario.Params{})
		if err != nil {
			log.Fatal(err)
		}
		in.Thresholds = thr.Result.([]experiments.ThresholdRow)
		patch, err := scenario.Execute(context.Background(), "patch", scenario.Params{})
		if err != nil {
			log.Fatal(err)
		}
		in.Patch = patch.Result.([]experiments.PatchRow)
	}
	if err := report.Write(w, in); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		log.Printf("wrote %s", *out)
	}
}
