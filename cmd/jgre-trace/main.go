// Command jgre-trace runs a traced JGRE attack and exports the causal
// flight-recorder spans as Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing: one track per process, binder
// transact → dispatch → handler chains as nested slices, JGR table
// occupancy as a counter track, and the defender's window/score/decision
// spans on their own thread track.
//
// Usage:
//
//	jgre-trace [-seed n] [-sample n] [-capacity n] [-o file]
//	jgre-trace -fleet n [-workers n] [-mode recycle|clone|fresh] ...
//
// The default is a single traced device running the Fig. 4 population
// plus one attacker on the fastest exploitable interface under a
// quick-scale defender, to first detection. -fleet runs the staged
// attack-rollout workload across n traced devices instead, merging each
// device's spans keyed by device index — the output is byte-identical
// for any worker count and any slot mode, which TestFleetTraceIdentical
// pins.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-trace: ")

	seed := flag.Int64("seed", 1, "device seed (fleet mode: fleet seed)")
	sample := flag.Uint64("sample", 1, "trace one in every n transactions (1 = all)")
	capacity := flag.Int("capacity", 0, "flight-recorder span capacity (0 = default)")
	out := flag.String("o", "", "output file (default stdout)")
	fleetN := flag.Int("fleet", 0, "run the attack-rollout workload across n traced devices")
	workers := flag.Int("workers", 0, "fleet worker count (0 = one per CPU)")
	modeName := flag.String("mode", "recycle", "fleet slot mode: recycle, clone or fresh")
	flag.Parse()

	tcfg := trace.Config{Enabled: true, Capacity: *capacity, Sample: *sample}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	var err error
	if *fleetN > 0 {
		mode, ok := parseMode(*modeName)
		if !ok {
			log.Fatalf("unknown mode %q (want recycle, clone or fresh)", *modeName)
		}
		err = runFleet(w, *fleetN, *workers, mode, *seed, tcfg)
	} else {
		err = runSingle(w, *seed, tcfg)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func parseMode(name string) (fleet.Mode, bool) {
	switch name {
	case "recycle":
		return fleet.ModeRecycle, true
	case "clone":
		return fleet.ModeClone, true
	case "fresh":
		return fleet.ModeFresh, true
	}
	return 0, false
}

// fastestInterface is the attack target: the exploitable interface with
// the lowest projected attack time (the same pick the fleet workloads
// make).
func fastestInterface() string {
	rows := catalog.ExploitableInterfaces()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cost.AttackSeconds < rows[j].Cost.AttackSeconds })
	return rows[0].FullName()
}

// runSingle traces one device: benign population plus one attacker under
// a quick-scale defender, run to first detection, spans exported. The
// span stream is a pure function of (seed, trace config) — the golden
// fig4 trace test pins the bytes.
func runSingle(w io.Writer, seed int64, tcfg trace.Config) error {
	dev, err := device.Boot(device.Config{Seed: seed, Trace: tcfg})
	if err != nil {
		return err
	}
	def, err := defense.New(dev, defense.Config{AlarmThreshold: 400, EngageThreshold: 1200})
	if err != nil {
		return err
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 3, seed, 2*time.Second); err != nil {
		return err
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		return err
	}
	evil.Start()
	atk, err := workload.NewAttacker(dev, evil, fastestInterface())
	if err != nil {
		return err
	}
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 2_000_000)

	rec := dev.Recorder()
	fmt.Fprintf(os.Stderr, "jgre-trace: %d spans (%d evicted), %d flight dumps, %d detections\n",
		rec.Len(), rec.Dropped(), dev.FlightDumpsTotal(), len(def.History()))
	return trace.ExportChrome(w, rec.Spans(), dev.ProcNames())
}

// runFleet traces the staged attack rollout across n devices. Each
// trial's spans are captured keyed by device index with pids remapped
// into a per-device range, so the merged export is independent of the
// worker count and the slot mode.
func runFleet(w io.Writer, n, workers int, mode fleet.Mode, seed int64, tcfg trace.Config) error {
	// pidStride separates the per-device pid ranges in the merged trace;
	// simulated pids stay far below it.
	const pidStride = 1 << 16
	var (
		mu    sync.Mutex
		spans []trace.SpanRecord
		names = make(map[int32]string)
		total int
		drops uint64
	)
	wl := fleet.AttackRollout(n).WithTraceCapture(func(index int, devSpans []trace.SpanRecord, devNames map[int32]string) {
		off := int32(index) * pidStride
		for i := range devSpans {
			devSpans[i].Pid += off
		}
		mu.Lock()
		defer mu.Unlock()
		total += len(devSpans)
		spans = append(spans, devSpans...)
		for pid, name := range devNames {
			names[pid+off] = fmt.Sprintf("dev%d/%s", index, name)
		}
	})
	cfg := fleet.Config{
		Devices: n,
		Workers: workers,
		Seed:    seed,
		Mode:    mode,
		Device:  device.Config{Trace: tcfg},
	}
	res, err := fleet.Run(context.Background(), cfg, wl)
	if err != nil {
		return err
	}
	if res.Trace != nil {
		drops = uint64(res.Trace.SpansDropped)
	}
	fmt.Fprintf(os.Stderr, "jgre-trace: fleet %d devices, %d spans merged (%d evicted on-device)\n",
		n, total, drops)
	return trace.ExportChrome(w, spans, names)
}
