package main

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// fig4Config is the golden trace's shape: seed 1, every transaction
// sampled, a 512-span ring (small enough to keep the golden file lean,
// and nonzero eviction so the golden also covers the ring-wrap path).
func fig4Config() trace.Config {
	return trace.Config{Enabled: true, Capacity: 512, Sample: 1}
}

// TestGoldenFig4Trace pins the single-device export byte-for-byte: the
// fig. 4 population plus one attacker, traced to first detection, must
// reproduce testdata/fig4_trace.json exactly and validate against the
// trace-event schema. Regenerate with:
//
//	go run ./cmd/jgre-trace -seed 1 -capacity 512 -o cmd/jgre-trace/testdata/fig4_trace.json
func TestGoldenFig4Trace(t *testing.T) {
	want, err := os.ReadFile("testdata/fig4_trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := runSingle(&got, 1, fig4Config()); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(got.Bytes()); err != nil {
		t.Fatalf("export failed schema validation: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("traced run diverged from golden (got %d bytes, want %d); regenerate only if the trace format intentionally changed",
			got.Len(), len(want))
	}
}

// TestSingleTraceDeterministic runs the traced device twice and demands
// byte-identical exports — the trace stream is a pure function of
// (seed, trace config).
func TestSingleTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := runSingle(&a, 7, trace.Config{Enabled: true, Capacity: 256}); err != nil {
		t.Fatal(err)
	}
	if err := runSingle(&b, 7, trace.Config{Enabled: true, Capacity: 256}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated traced runs diverged")
	}
}

// TestFleetTraceIdentical pins the fleet export's independence from
// scheduling: the merged trace must be byte-identical across worker
// counts and across recycle/clone/fresh slot modes.
func TestFleetTraceIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet trace comparison in -short mode")
	}
	const devices = 8
	tcfg := trace.Config{Enabled: true, Capacity: 512}
	run := func(workers int, mode fleet.Mode) []byte {
		var buf bytes.Buffer
		if err := runFleet(&buf, devices, workers, mode, 1042, tcfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(1, fleet.ModeRecycle)
	if err := trace.ValidateChrome(base); err != nil {
		t.Fatalf("fleet export failed schema validation: %v", err)
	}
	for _, c := range []struct {
		name    string
		workers int
		mode    fleet.Mode
	}{
		{"workers=4 recycle", 4, fleet.ModeRecycle},
		{"workers=4 clone", 4, fleet.ModeClone},
		{"workers=4 fresh", 4, fleet.ModeFresh},
	} {
		if !bytes.Equal(run(c.workers, c.mode), base) {
			t.Fatalf("%s diverged from workers=1 recycle", c.name)
		}
	}
}
