// Command jgre-dumpsys is the simulator's diagnostic tool: it boots a
// device, optionally drives a scenario, and prints a dumpsys-style state
// report plus any defender detections — useful for poking at the
// simulation interactively.
//
// Usage:
//
//	jgre-dumpsys [-scenario idle|benign|attack|defended]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-dumpsys: ")

	scenario := flag.String("scenario", "benign", "idle | benign | attack | defended")
	flag.Parse()

	dev, err := device.Boot(device.Config{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	var def *defense.Defender
	if *scenario == "defended" {
		if def, err = defense.New(dev, defense.Config{}); err != nil {
			log.Fatal(err)
		}
	}

	switch *scenario {
	case "idle":
		// Nothing: stock device right after boot.
	case "benign":
		sched := workload.NewScheduler(dev)
		if _, err := workload.Population(dev, sched, 15, 4, time.Second); err != nil {
			log.Fatal(err)
		}
		sched.Run(func() bool { return dev.Clock().Now() > 2*time.Minute }, 200000)
	case "attack", "defended":
		sched := workload.NewScheduler(dev)
		if _, err := workload.Population(dev, sched, 10, 4, time.Second); err != nil {
			log.Fatal(err)
		}
		evil, err := dev.Apps().Install("com.evil.app")
		if err != nil {
			log.Fatal(err)
		}
		atk, err := workload.NewAttacker(dev, evil, "clipboard.addPrimaryClipChangedListener")
		if err != nil {
			log.Fatal(err)
		}
		sched.Add(atk)
		stop := func() bool {
			if def != nil {
				return len(def.History()) > 0
			}
			return dev.SoftReboots() > 0
		}
		sched.Run(stop, 3_000_000)
	default:
		log.Printf("unknown scenario %q", *scenario)
		os.Exit(2)
	}

	dev.DumpState(os.Stdout)
	if def != nil {
		fmt.Println()
		for _, det := range def.History() {
			fmt.Print(defense.FormatDetection(det))
		}
	}
}
