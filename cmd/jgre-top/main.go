// Command jgre-top is the simulator's live-metrics dashboard: it boots a
// device, drives a scenario while sampling the telemetry registry on the
// virtual clock, then renders a dumpsys/top-style report — sparklines
// for the sampled series, bucket bars for the latency/size histograms,
// and the defender's span timeline when one is attached.
//
// Usage:
//
// The chaos scenario adds the lifecycle fault layer — supervised service
// crashes, a defender that is killed and restored from its checkpoint,
// and a mid-run soft reboot — and renders a RECOVERY panel with the
// chaos/supervisor/checkpoint counters.
//
// The fleet scenario is different in kind: instead of one device on the
// virtual clock it runs the fleet engine's baseline and attack-rollout
// sweeps across -fleet-devices recycled slots and renders a FLEET panel
// — the engine's slot-turnover counters plus each sweep's streaming
// rollup (detection rate, innocent kills, time-to-detect percentiles).
//
//	jgre-top [-scenario idle|benign|attack|defended|chaos|fleet] [-tick 1s] [-duration 2m] [-width 60] [-fleet-devices 512]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/metrics/ascii"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

const jgrSeries = `jgre_jgr_table_size{process="system_server"}`

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-top: ")

	scenarioF := flag.String("scenario", "attack", "idle | benign | attack | defended | chaos | fleet")
	tick := flag.Duration("tick", time.Second, "virtual sampling interval")
	duration := flag.Duration("duration", 2*time.Minute, "virtual time to simulate")
	width := flag.Int("width", 60, "sparkline width in cells")
	fleetDevices := flag.Int("fleet-devices", 512, "fleet width for -scenario fleet")
	traceF := flag.Bool("trace", false, "turn the causal flight recorder on (populates the TRACE panel)")
	flag.Parse()

	tcfg := trace.Config{Enabled: *traceF}
	if *scenarioF == "fleet" {
		runFleet(*fleetDevices, tcfg)
		return
	}

	dev, err := device.Boot(device.Config{Seed: 4, Trace: tcfg})
	if err != nil {
		log.Fatal(err)
	}
	var def *defense.Defender
	var bouncer *defense.Bouncer
	switch *scenarioF {
	case "defended":
		if def, err = defense.New(dev, defense.Config{}); err != nil {
			log.Fatal(err)
		}
	case "chaos":
		// Clients retry dead handles so the workload survives the churn the
		// chaos engine is about to inject.
		dev.SetClientRetry(services.RetryPolicy{Deadline: 3 * time.Second, Backoff: 50 * time.Millisecond})
		if bouncer, err = defense.NewBouncer(dev, defense.Config{}, defense.BounceSync); err != nil {
			log.Fatal(err)
		}
	}

	sampler := telemetry.NewSampler(dev.Metrics(), *tick, int(*duration / *tick)+1)
	sampler.Track(
		jgrSeries,
		"jgre_binder_transactions_total",
		"jgre_binder_ring_occupancy_ratio",
		"jgre_device_processes",
		"jgre_event_queue_depth",
		"jgre_defender_coverage",
	)
	sample := func() { sampler.MaybeSample(dev.Clock().Now()) }

	switch *scenarioF {
	case "idle":
		// No actors: walk the clock by hand so the series still have a
		// timeline.
		for dev.Clock().Now() < *duration {
			sample()
			dev.Clock().Advance(*tick)
		}
	case "benign", "attack", "defended", "chaos":
		sched := workload.NewScheduler(dev)
		pop := 15
		if *scenarioF != "benign" {
			pop = 10
		}
		benign, err := workload.Population(dev, sched, pop, 4, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		if *scenarioF != "benign" {
			evil, err := dev.Apps().Install("com.evil.app")
			if err != nil {
				log.Fatal(err)
			}
			atk, err := workload.NewAttacker(dev, evil, "clipboard.addPrimaryClipChangedListener")
			if err != nil {
				log.Fatal(err)
			}
			sched.Add(atk)
			if *scenarioF == "chaos" {
				atk.SetAutoRestart(true)
				for _, b := range benign {
					b.SetAutoRestart(true)
				}
				chaos.New(dev, sched, chaos.Config{
					Seed:              7,
					CrashEvery:        10 * time.Second,
					CrashApps:         true,
					CrashAppServices:  true,
					RebootAt:          90 * time.Second,
					DefenderKillEvery: 45 * time.Second,
					DefenderDowntime:  2 * time.Second,
				}, bouncer)
				chaos.NewSupervisor(dev, sched, chaos.SupervisorConfig{})
			}
		}
		sched.Run(func() bool {
			sample()
			return dev.Clock().Now() >= *duration
		}, 5_000_000)
	default:
		log.Printf("unknown scenario %q", *scenarioF)
		os.Exit(2)
	}
	sample()

	if bouncer != nil {
		// Render whatever incarnation survived the chaos run.
		def = bouncer.Defender()
	}
	render(os.Stdout, dev, def, sampler, *scenarioF, *width)
}

// runFleet drives the fleet engine's baseline and attack-rollout sweeps
// and renders the FLEET panel from the engine's process-global counters
// plus each sweep's rollup.
func runFleet(devices int, tcfg trace.Config) {
	ctx := context.Background()
	var results []*fleet.Result
	for _, w := range []fleet.Workload{fleet.BaselineProbe(), fleet.AttackRollout(devices)} {
		res, err := fleet.Run(ctx, fleet.Config{Devices: devices, Seed: 1042,
			Device: device.Config{Trace: tcfg}}, w)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	renderFleet(os.Stdout, results)
}

// renderFleet prints the FLEET panel. Like the RECOVERY panel it is
// keyed on metric presence: the slot-turnover line renders only when the
// fleet engine registered its jgre_fleet_* counters this process.
func renderFleet(w *os.File, results []*fleet.Result) {
	g := telemetry.Global()
	counter := func(name string) float64 {
		v, _ := g.Value(name)
		return v
	}
	if _, ok := g.Value("jgre_fleet_devices_total"); ok {
		fmt.Fprintf(w, "FLEET  devices=%.0f  trials=%.0f\n",
			counter("jgre_fleet_devices_total"), counter("jgre_fleet_trials_total"))
		fmt.Fprintf(w, "slots  clones=%.0f  recycles=%.0f  fresh boots=%.0f\n",
			counter("jgre_fleet_slot_clones_total"),
			counter("jgre_fleet_slot_recycles_total"),
			counter("jgre_fleet_slot_fresh_total"))
	}
	lat := func(label string, s fleet.Summary) {
		if s.Count == 0 {
			fmt.Fprintf(w, "  %-16s (no samples)\n", label)
			return
		}
		fmt.Fprintf(w, "  %-16s p50 %6dms  p90 %6dms  p99 %6dms  max %6dms\n",
			label, s.P50, s.P90, s.P99, s.Max)
	}
	for _, r := range results {
		fmt.Fprintf(w, "\n%s  %d devices (chunk %d, seed %d)\n",
			r.Workload, r.Devices, r.ChunkSize, r.Seed)
		fmt.Fprintf(w, "  infected %d  detected %d (rate %.3f)  recovered %d  false alarms %d\n",
			r.Infected, r.Detected, r.DetectionRate, r.Recovered, r.FalseAlarms)
		fmt.Fprintf(w, "  kills: colluders %d  innocents %d (%.2f per engagement)\n",
			r.ColludersCaught, r.InnocentKills, r.InnocentKillRate)
		lat("time-to-detect", r.TimeToDetectMS)
		lat("time-to-recover", r.TimeToRecoverMS)
		fmt.Fprintf(w, "  %-16s p50 %6d    p90 %6d    p99 %6d    max %6d\n",
			"peak JGR", r.PeakJGR.P50, r.PeakJGR.P90, r.PeakJGR.P99, r.PeakJGR.Max)
		// TRACE block: present only when the fleet ran with flight
		// recorders on; an explicit placeholder otherwise (never a blank).
		if t := r.Trace; t != nil {
			fmt.Fprintf(w, "  TRACE trials %d  attributed %d (rate %.3f)  spans dropped %d\n",
				t.Trials, t.Attributed, t.AttributionRate, t.SpansDropped)
			lat("attack→evidence", t.AttackToEvidenceMS)
			lat("evidence→detect", t.EvidenceToDetectMS)
			lat("attack→detect", t.AttackToDetectMS)
		} else {
			fmt.Fprintf(w, "  TRACE (no trace rollup — run with -trace; benign workloads record no causal chain)\n")
		}
	}
}

func render(w *os.File, dev *device.Device, def *defense.Defender, sampler *telemetry.Sampler, scen string, width int) {
	s := dev.Stats()
	fmt.Fprintf(w, "JGRE-TOP  scenario=%s  t=%.0fs  tick=%v  samples=%d\n",
		scen, s.UptimeSeconds, sampler.Interval(), len(sampler.Series(jgrSeries)))
	fmt.Fprintf(w, "procs %d  apps %d  reboots %d  lmk %d  tx %d\n\n",
		s.Processes, s.RunningApps, s.SoftReboots, s.LMKKills, s.Transactions)

	fmt.Fprintf(w, "system_server JGR  %d / %d (peak %d)  %s\n",
		s.SystemServerJGR, s.JGRCap, s.SystemServerPeakJGR,
		ascii.Meter(float64(s.SystemServerJGR), float64(s.JGRCap), 20))
	spark(w, "JGR table", sampler.Values(jgrSeries), width)
	spark(w, "tx rate/s", telemetry.Rate(sampler.Series("jgre_binder_transactions_total")), width)
	spark(w, "ring occ.", sampler.Values("jgre_binder_ring_occupancy_ratio"), width)
	spark(w, "processes", sampler.Values("jgre_device_processes"), width)
	// Event-core vitals: pending events in the scheduler's priority queue
	// and how far virtual time has advanced. The queue depth is flat while
	// every actor reschedules itself and dips as actors finish.
	spark(w, "evt queue", sampler.Values("jgre_event_queue_depth"), width)
	if vt, ok := dev.Metrics().Value("jgre_event_virtual_time_seconds"); ok {
		fmt.Fprintf(w, "%-10s virtual clock at %.1fs\n", "evt time", vt)
	}

	if h, ok := histogram(dev, "jgre_binder_tx_bytes"); ok && h.Count() > 0 {
		fmt.Fprintf(w, "\nbinder transaction size (bytes, %d observed)\n", h.Count())
		fmt.Fprint(w, ascii.HistogramBars(h.Bounds(), h.BucketCounts(), 40))
	}

	counter := func(name string) float64 {
		v, _ := dev.Metrics().Value(name)
		return v
	}
	// RECOVERY panel: present only when a chaos engine registered its
	// counters on this device.
	if _, ok := dev.Metrics().Value("jgre_chaos_crashes_total"); ok {
		fmt.Fprintf(w, "\nRECOVERY  crashes=%.0f  reboots=%.0f  defender kills=%.0f restores=%.0f\n",
			counter("jgre_chaos_crashes_total"),
			counter("jgre_chaos_reboots_total"),
			counter("jgre_chaos_defender_kills_total"),
			counter("jgre_chaos_defender_restores_total"))
		fmt.Fprintf(w, "supervisor  restarts %.0f  failures %.0f  pending %.0f  backoff %.2fs\n",
			counter("jgre_supervisor_restarts_total"),
			counter("jgre_supervisor_failures_total"),
			counter("jgre_supervisor_pending"),
			counter("jgre_supervisor_backoff_seconds"))
		fmt.Fprintf(w, "checkpoints written %.0f  restored %.0f\n",
			counter("jgre_defender_checkpoints_total"),
			counter("jgre_defender_restores_total"))
	}

	// TRACE panel: flight-recorder health. The families read zero when
	// tracing is off; each one is queried through gaugeField, which —
	// mirroring spark()'s empty-series fix — renders an explicit
	// placeholder instead of a blank when a family is absent from the
	// registry entirely.
	fmt.Fprintf(w, "\nTRACE  spans=%s  evicted=%s  dumps=%s\n",
		gaugeField(dev, "jgre_trace_spans"),
		gaugeField(dev, "jgre_trace_span_drops_total"),
		gaugeField(dev, "jgre_trace_flight_dumps_total"))
	if dumps := dev.FlightDumps(); len(dumps) > 0 {
		fmt.Fprintf(w, "flight dumps (last %d):\n", min(len(dumps), 5))
		for _, d := range dumps[max(0, len(dumps)-5):] {
			fmt.Fprintf(w, "  %8.1fs %-32s %d spans\n", d.T.Seconds(), d.Reason, len(d.Spans))
		}
	}

	if def == nil {
		return
	}
	fmt.Fprintf(w, "\nDEFENDER  engagements=%d\n", len(def.History()))
	fmt.Fprintf(w, "correlator  types scored %.0f  no-overlap %.0f  tight-span %.0f  pairs swept %.0f\n",
		counter("jgre_defender_correlator_types_scored_total"),
		counter("jgre_defender_correlator_types_skipped_total"),
		counter("jgre_defender_correlator_span_shortcuts_total"),
		counter("jgre_defender_correlator_bucket_pairs_total"))
	spark(w, "coverage", sampler.Values("jgre_defender_coverage"), width)
	if h, ok := histogram(dev, `jgre_defender_phase_seconds{phase="read"}`); ok && h.Count() > 0 {
		fmt.Fprintf(w, "read-phase latency (s, %d windows)\n", h.Count())
		fmt.Fprint(w, ascii.HistogramBars(h.Bounds(), h.BucketCounts(), 40))
	}
	spans := dev.Journal().Spans()
	if len(spans) > 0 {
		fmt.Fprintf(w, "poll-window spans (last %d):\n", min(len(spans), 5))
		for _, ev := range spans[max(0, len(spans)-5):] {
			fmt.Fprintf(w, "  %8.1fs %s %s\n", ev.T.Seconds(), ev.Subject, ev.Detail)
		}
	}
	for _, det := range def.History() {
		fmt.Fprintln(w)
		fmt.Fprint(w, defense.FormatDetection(det))
	}
}

// spark prints one labelled sparkline row with its current value. An
// empty series — a clone whose lazy telemetry had not materialized when
// sampling started, or a metric the scenario never drives — renders as
// an explicit placeholder rather than a blank (or panicking) row.
func spark(w *os.File, label string, values []float64, width int) {
	if len(values) == 0 {
		fmt.Fprintf(w, "%-10s (no samples)\n", label)
		return
	}
	fmt.Fprintf(w, "%-10s %s  now %g\n", label, ascii.Sparkline(values, width), values[len(values)-1])
}

// gaugeField formats one gauge family's value, or an explicit
// "(absent)" placeholder when the family was never registered — the
// same degrade-readably contract spark() applies to empty series.
func gaugeField(dev *device.Device, name string) string {
	v, ok := dev.Metrics().Value(name)
	if !ok {
		return "(absent)"
	}
	return fmt.Sprintf("%.0f", v)
}

// histogram fetches an existing histogram handle from the device
// registry without registering a new family.
func histogram(dev *device.Device, name string) (*telemetry.Histogram, bool) {
	if _, ok := dev.Metrics().Value(name); !ok {
		return nil, false
	}
	return dev.Metrics().Histogram(name, "", nil), true
}
