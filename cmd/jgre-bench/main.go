// Command jgre-bench times the parallel experiment engine. It runs each
// parallelizable scenario from the registry twice — sequentially
// (workers=1) and on the full worker pool — verifies both produce
// identical canonical envelopes, and reports wall-clock timings and
// speedup. The sweep list is scenario.List() filtered to Parallelizable;
// nothing here is hand-maintained. -bench-json writes the measurements
// as JSON, the format of the repository's BENCH_*.json performance
// trajectory.
//
// Usage:
//
//	jgre-bench [-parallel n] [-sweeps fig3,fig6,...] [-scale quick|full]
//	           [-bench-json path] [-cpuprofile path] [-memprofile path]
//	jgre-bench -fleet-json path [-fleet-devices n] [-parallel n]
//
// -sweeps defaults to every parallelizable scenario (see jgre-run list).
// -cpuprofile/-memprofile write pprof profiles covering the sweep runs,
// for drilling into the simulation hot path (`make bench-profile`).
//
// -fleet-json switches to the fleet throughput comparison instead: it
// runs the fleet-baseline sweep once per slot mode (recycle, clone,
// fresh), verifies all three produce the identical rollup, and writes a
// devices/sec + allocation report (the repository's BENCH_fleet.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

// SweepTiming is one sweep's sequential-vs-parallel measurement.
type SweepTiming struct {
	Sweep       string  `json:"sweep"`
	Shards      int     `json:"shards"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical_output"`
}

// Report is the jgre-bench JSON output.
type Report struct {
	GeneratedUnix int64 `json:"generated_unix"`
	GoMaxProcs    int   `json:"gomaxprocs"`
	// NumCPU is the machine's hardware parallelism. Recording it beside
	// gomaxprocs keeps the envelope honest: a sweep run with GOMAXPROCS
	// raised above the physical core count cannot demonstrate a real
	// parallel win, and the pair makes that visible in the artifact.
	NumCPU  int `json:"num_cpu"`
	Workers int `json:"workers"`
	Scale         string        `json:"scale"`
	Sweeps        []SweepTiming `json:"sweeps"`
	TotalSeqS     float64       `json:"total_sequential_s"`
	TotalParS     float64       `json:"total_parallel_s"`
	Speedup       float64       `json:"speedup"`
	// BootNs/CloneNs time a from-scratch device boot against a
	// copy-on-write clone of a sealed boot template — the per-shard cost
	// every sweep above actually pays. CloneBootRatio is boot/clone;
	// `make bench-smoke` gates it at ≥50.
	BootNs         int64   `json:"boot_ns"`
	CloneNs        int64   `json:"clone_ns"`
	CloneBootRatio float64 `json:"clone_boot_ratio"`
}

// FleetTiming is one slot mode's fleet-baseline throughput measurement.
// Allocation figures are process-wide deltas (runtime.MemStats) across
// the run — the accounting that shows recycling's bounded-memory story,
// not just its speed.
type FleetTiming struct {
	Mode          string  `json:"mode"`
	WallS         float64 `json:"wall_s"`
	DevicesPerSec float64 `json:"devices_per_sec"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	AllocObjects  uint64  `json:"alloc_objects"`
	BytesPerDev   uint64  `json:"alloc_bytes_per_device"`
}

// FleetReport is the -fleet-json output (BENCH_fleet.json): the
// devices/sec headline per slot mode and the recycle-vs-clone ratio
// `make bench-smoke` gates at >= 2x.
type FleetReport struct {
	GeneratedUnix     int64         `json:"generated_unix"`
	GoMaxProcs        int           `json:"gomaxprocs"`
	NumCPU            int           `json:"num_cpu"`
	Workers           int           `json:"workers"`
	Workload          string        `json:"workload"`
	Devices           int           `json:"devices"`
	Modes             []FleetTiming `json:"modes"`
	RecycleCloneRatio float64       `json:"recycle_clone_ratio"`
	RecycleFreshRatio float64       `json:"recycle_fresh_ratio"`
	Identical         bool          `json:"identical_output"`
}

// fleetBench runs the fleet-baseline workload once per slot mode and
// checks all modes roll up to the identical Result.
func fleetBench(devices, workers int) (FleetReport, error) {
	rep := FleetReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Devices:       devices,
	}
	ctx := context.Background()
	perSec := make(map[fleet.Mode]float64)
	var canonical []byte
	rep.Identical = true
	for _, mode := range []fleet.Mode{fleet.ModeRecycle, fleet.ModeClone, fleet.ModeFresh} {
		w := fleet.BaselineProbe()
		rep.Workload = w.Name
		cfg := fleet.Config{Devices: devices, Workers: workers, Seed: 1042, Mode: mode}
		// Warm the boot-template cache outside the timed region so the
		// clone legs price steady-state clones, not the first boot.
		if _, err := fleet.Run(ctx, fleet.Config{Devices: 1, Seed: 1042, Mode: mode}, w); err != nil {
			return rep, err
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res, err := fleet.Run(ctx, cfg, w)
		wall := time.Since(t0)
		if err != nil {
			return rep, err
		}
		runtime.ReadMemStats(&m1)
		js, err := json.Marshal(res)
		if err != nil {
			return rep, err
		}
		if canonical == nil {
			canonical = js
		} else if !bytes.Equal(canonical, js) {
			rep.Identical = false
		}
		ft := FleetTiming{
			Mode:          mode.String(),
			WallS:         wall.Seconds(),
			DevicesPerSec: float64(devices) / wall.Seconds(),
			AllocBytes:    m1.TotalAlloc - m0.TotalAlloc,
			AllocObjects:  m1.Mallocs - m0.Mallocs,
		}
		ft.BytesPerDev = ft.AllocBytes / uint64(devices)
		perSec[mode] = ft.DevicesPerSec
		rep.Modes = append(rep.Modes, ft)
		fmt.Printf("fleet %-8s %5d devices   %8.3fs   %9.0f devices/sec   %7.2f KB/device\n",
			mode, devices, ft.WallS, ft.DevicesPerSec, float64(ft.BytesPerDev)/1024)
	}
	if !rep.Identical {
		return rep, fmt.Errorf("fleet rollups differ across slot modes — determinism broken")
	}
	if perSec[fleet.ModeClone] > 0 {
		rep.RecycleCloneRatio = perSec[fleet.ModeRecycle] / perSec[fleet.ModeClone]
	}
	if perSec[fleet.ModeFresh] > 0 {
		rep.RecycleFreshRatio = perSec[fleet.ModeRecycle] / perSec[fleet.ModeFresh]
	}
	fmt.Printf("fleet recycle/clone %.2fx   recycle/fresh %.2fx\n",
		rep.RecycleCloneRatio, rep.RecycleFreshRatio)
	return rep, nil
}

// timeBootClone measures median from-scratch boot time and median clone
// time off one sealed template.
func timeBootClone() (bootNs, cloneNs int64, err error) {
	const rounds = 15
	runtime.GC() // boot and clone phases start from the same heap state
	boots := make([]time.Duration, rounds)
	for i := range boots {
		t0 := time.Now()
		if _, err := device.BootFresh(device.Config{Seed: int64(i)}); err != nil {
			return 0, 0, err
		}
		boots[i] = time.Since(t0)
	}
	tmpl, err := device.BootFresh(device.Config{Seed: 1})
	if err != nil {
		return 0, 0, err
	}
	tmpl.Snapshot()
	runtime.GC()
	// Clones are ~µs; time batches so each sample is well above timer
	// granularity.
	const batch = 64
	clones := make([]time.Duration, rounds)
	for i := range clones {
		t0 := time.Now()
		for j := 0; j < batch; j++ {
			if _, err := tmpl.CloneWithSeed(int64(i*batch + j)); err != nil {
				return 0, 0, err
			}
		}
		clones[i] = time.Since(t0) / batch
	}
	median := func(ds []time.Duration) int64 {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return int64(ds[len(ds)/2])
	}
	return median(boots), median(clones), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-bench: ")

	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for the parallel leg")
	names := flag.String("sweeps", "", "comma-separated scenarios to time (default: every parallelizable one)")
	scaleName := flag.String("scale", "quick", "quick or full")
	jsonPath := flag.String("bench-json", "", "write the report as JSON to this path ('-' or empty prints it)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep runs to this path")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the sweeps) to this path")
	fleetJSON := flag.String("fleet-json", "", "run the fleet slot-mode throughput comparison instead and write it to this path ('-' prints it)")
	fleetDevices := flag.Int("fleet-devices", 512, "fleet width for -fleet-json")
	flag.Parse()

	scale, err := scenario.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	if *fleetJSON != "" {
		rep, err := fleetBench(*fleetDevices, *workers)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*fleetJSON, rep)
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	want := make(map[string]bool)
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	var available []string
	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Workers:       *workers,
		Scale:         scale.String(),
	}
	// Boot/clone timing runs first, on a quiet heap — after the sweeps the
	// retained envelopes distort the GC share of both measurements.
	rep.BootNs, rep.CloneNs, err = timeBootClone()
	if err != nil {
		log.Fatalf("boot/clone timing: %v", err)
	}
	if rep.CloneNs > 0 {
		rep.CloneBootRatio = float64(rep.BootNs) / float64(rep.CloneNs)
	}
	fmt.Printf("%-12s             boot %8.3fms  clone  %8.3fms  ratio   %.1fx\n",
		"DEVICE", float64(rep.BootNs)/1e6, float64(rep.CloneNs)/1e6, rep.CloneBootRatio)

	ctx := context.Background()
	for _, sc := range scenario.List() {
		if !sc.Parallelizable {
			continue
		}
		available = append(available, sc.Name)
		if len(want) > 0 && !want[sc.Name] {
			continue
		}
		run := func(w int) (*scenario.Envelope, time.Duration, error) {
			t0 := time.Now()
			env, err := sc.Execute(ctx, scenario.Params{Scale: scale, Workers: w})
			return env, time.Since(t0), err
		}
		seqEnv, seq, err := run(1)
		if err != nil {
			log.Fatalf("%s sequential: %v", sc.Name, err)
		}
		parEnv, par, err := run(*workers)
		if err != nil {
			log.Fatalf("%s parallel: %v", sc.Name, err)
		}

		shards := 0
		if sc.Shards != nil {
			shards = sc.Shards(seqEnv.Result)
		}
		st := SweepTiming{
			Sweep:       sc.Name,
			Shards:      shards,
			SequentialS: seq.Seconds(),
			ParallelS:   par.Seconds(),
			Speedup:     seq.Seconds() / par.Seconds(),
			Identical:   identical(seqEnv, parEnv),
		}
		if !st.Identical {
			log.Fatalf("%s: workers=1 and workers=%d outputs differ — determinism broken", sc.Name, *workers)
		}
		rep.Sweeps = append(rep.Sweeps, st)
		rep.TotalSeqS += st.SequentialS
		rep.TotalParS += st.ParallelS
		fmt.Printf("%-12s %3d shards   seq %8.3fs   par(%d) %8.3fs   speedup %.2fx\n",
			sc.Name, st.Shards, st.SequentialS, *workers, st.ParallelS, st.Speedup)
	}
	if len(rep.Sweeps) == 0 {
		log.Fatalf("no sweeps selected (have: %s)", strings.Join(available, ", "))
	}
	if rep.TotalParS > 0 {
		rep.Speedup = rep.TotalSeqS / rep.TotalParS
	}
	fmt.Printf("%-12s              seq %8.3fs   par(%d) %8.3fs   speedup %.2fx\n",
		"TOTAL", rep.TotalSeqS, *workers, rep.TotalParS, rep.Speedup)

	writeJSON(*jsonPath, rep)
}

// writeJSON renders v indented to path ("" or "-" prints to stdout).
func writeJSON(path string, v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if path == "" || path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// identical compares the two legs' canonical envelopes — the same
// equality the registry equivalence tests assert (wall time and worker
// count, which legitimately differ, are zeroed).
func identical(a, b *scenario.Envelope) bool {
	ja, err1 := a.CanonicalJSON()
	jb, err2 := b.CanonicalJSON()
	return err1 == nil && err2 == nil && bytes.Equal(ja, jb)
}
