// Command jgre-bench times the parallel experiment engine. It runs each
// converted sweep twice — sequentially (workers=1) and on the full worker
// pool — verifies both produce identical output, and reports wall-clock
// timings and speedup. -bench-json writes the measurements as JSON, the
// format of the repository's BENCH_*.json performance trajectory.
//
// Usage:
//
//	jgre-bench [-parallel n] [-sweeps fig3,fig6,fig8,delays,thresholds]
//	           [-scale quick|full] [-bench-json path]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// SweepTiming is one sweep's sequential-vs-parallel measurement.
type SweepTiming struct {
	Sweep       string  `json:"sweep"`
	Shards      int     `json:"shards"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical_output"`
}

// Report is the jgre-bench JSON output.
type Report struct {
	GeneratedUnix int64         `json:"generated_unix"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	Workers       int           `json:"workers"`
	Scale         string        `json:"scale"`
	Sweeps        []SweepTiming `json:"sweeps"`
	TotalSeqS     float64       `json:"total_sequential_s"`
	TotalParS     float64       `json:"total_parallel_s"`
	Speedup       float64       `json:"speedup"`
}

// sweep adapts one experiment to the timing harness: run returns the
// result (for the output-identity check) and the shard count.
type sweep struct {
	name string
	run  func(ctx context.Context, scale experiments.Scale, workers int) (any, int, error)
}

var sweeps = []sweep{
	{"fig3", func(ctx context.Context, scale experiments.Scale, workers int) (any, int, error) {
		curves, err := experiments.Fig3AttackCurvesContext(ctx, scale, nil, workers)
		return curves, len(curves), err
	}},
	{"fig6", func(ctx context.Context, scale experiments.Scale, workers int) (any, int, error) {
		res, err := experiments.Fig6LatencyCDFContext(ctx, scale, workers)
		if err != nil {
			return nil, 0, err
		}
		return res, len(res.PerInterface), nil
	}},
	{"fig8", func(ctx context.Context, scale experiments.Scale, workers int) (any, int, error) {
		rows, err := experiments.Fig8SingleAttackerContext(ctx, scale, workers)
		return rows, len(rows), err
	}},
	{"delays", func(ctx context.Context, scale experiments.Scale, workers int) (any, int, error) {
		rows, err := experiments.ResponseDelaysContext(ctx, scale, workers)
		return rows, len(rows), err
	}},
	{"thresholds", func(ctx context.Context, scale experiments.Scale, workers int) (any, int, error) {
		rows, err := experiments.ThresholdAblationContext(ctx, workers)
		return rows, len(rows), err
	}},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-bench: ")

	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for the parallel leg")
	names := flag.String("sweeps", "fig3,fig6,fig8,delays,thresholds", "comma-separated sweeps to time")
	scaleName := flag.String("scale", "quick", "quick or full")
	jsonPath := flag.String("bench-json", "", "write the report as JSON to this path ('-' or empty prints it)")
	flag.Parse()

	scale := experiments.Quick
	if *scaleName == "full" {
		scale = experiments.Full
	}
	want := make(map[string]bool)
	for _, n := range strings.Split(*names, ",") {
		want[strings.TrimSpace(n)] = true
	}

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Workers:       *workers,
		Scale:         *scaleName,
	}
	ctx := context.Background()
	for _, sw := range sweeps {
		if !want[sw.name] {
			continue
		}
		t0 := time.Now()
		seqOut, shards, err := sw.run(ctx, scale, 1)
		if err != nil {
			log.Fatalf("%s sequential: %v", sw.name, err)
		}
		seq := time.Since(t0)

		t0 = time.Now()
		parOut, _, err := sw.run(ctx, scale, *workers)
		if err != nil {
			log.Fatalf("%s parallel: %v", sw.name, err)
		}
		par := time.Since(t0)

		st := SweepTiming{
			Sweep:       sw.name,
			Shards:      shards,
			SequentialS: seq.Seconds(),
			ParallelS:   par.Seconds(),
			Speedup:     seq.Seconds() / par.Seconds(),
			Identical:   identical(seqOut, parOut),
		}
		if !st.Identical {
			log.Fatalf("%s: workers=1 and workers=%d outputs differ — determinism broken", sw.name, *workers)
		}
		rep.Sweeps = append(rep.Sweeps, st)
		rep.TotalSeqS += st.SequentialS
		rep.TotalParS += st.ParallelS
		fmt.Printf("%-12s %3d shards   seq %8.3fs   par(%d) %8.3fs   speedup %.2fx\n",
			sw.name, st.Shards, st.SequentialS, *workers, st.ParallelS, st.Speedup)
	}
	if len(rep.Sweeps) == 0 {
		log.Fatalf("no sweeps selected (have: fig3, fig6, fig8, delays, thresholds)")
	}
	if rep.TotalParS > 0 {
		rep.Speedup = rep.TotalSeqS / rep.TotalParS
	}
	fmt.Printf("%-12s              seq %8.3fs   par(%d) %8.3fs   speedup %.2fx\n",
		"TOTAL", rep.TotalSeqS, *workers, rep.TotalParS, rep.Speedup)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if *jsonPath == "" || *jsonPath == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *jsonPath)
}

// identical compares two sweep results structurally via their JSON
// encoding — the same equality the equivalence tests assert.
func identical(a, b any) bool {
	ja, err1 := json.Marshal(a)
	jb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ja) == string(jb)
}
