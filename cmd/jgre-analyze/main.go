// Command jgre-analyze runs the paper's four-step JGRE analysis pipeline
// (§III) over the synthesized AOSP-6.0.1 corpus and prints the funnel and
// the evaluation tables (Tables I–V).
//
// Usage:
//
//	jgre-analyze [-dynamic] [-thirdparty n] [-calls n] [-parallel n] [-table 1..5] [-funnel]
//
// Without -table/-funnel flags everything is printed. The -table arms
// dispatch through the scenario registry (scenarios table-i … table-v);
// the audit itself keeps its pipeline-specific -thirdparty/-calls knobs
// and calls core.Audit directly (the registry's headline and
// audit-static scenarios cover the uniform path). Dynamic verification
// fans out across -parallel workers (default: one per CPU), each
// candidate on its own simulated device; the result is identical for any
// worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jgre-analyze: ")

	dynamic := flag.Bool("dynamic", true, "run dynamic verification against a simulated device")
	thirdParty := flag.Int("thirdparty", 1000, "size of the synthetic Google Play population (0 disables Table V)")
	calls := flag.Int("calls", 300, "invocations per candidate during dynamic verification")
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "verification worker count (1 = sequential; results are identical)")
	table := flag.Int("table", 0, "print only this table (1-5)")
	funnelOnly := flag.Bool("funnel", false, "print only the pipeline funnel")
	asJSON := flag.Bool("json", false, "emit the audit result as JSON")
	flag.Parse()

	if *table != 0 {
		names := map[int]string{1: "table-i", 2: "table-ii", 3: "table-iii", 4: "table-iv", 5: "table-v"}
		name, ok := names[*table]
		if !ok {
			log.Printf("unknown table %d (want 1-5)", *table)
			os.Exit(2)
		}
		env, err := scenario.Execute(context.Background(), name, scenario.Params{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(env.Result.(string))
		return
	}

	res, err := core.Audit(core.AuditConfig{
		ThirdPartyApps: *thirdParty,
		Dynamic:        *dynamic,
		VerifyCalls:    *calls,
		Seed:           1,
		Workers:        *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		out, err := core.FormatJSON(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	fmt.Print(core.FormatFunnel(res.Funnel()))
	if *funnelOnly {
		return
	}
	fmt.Println()
	fmt.Print(core.FormatTableI())
	fmt.Println()
	fmt.Print(core.FormatTableII())
	fmt.Println()
	fmt.Print(core.FormatTableIII())
	fmt.Println()
	fmt.Print(core.FormatTableIV())
	fmt.Println()
	fmt.Print(core.FormatTableV())
	if res.Verify != nil {
		fmt.Println()
		fmt.Print(core.FormatFindings(res.Verify))
	}
}
